// Graph serialization (qsc/graph/io.h): text and binary round trips over
// the Rothko property corpus, the qsc-bin v1 validation ladder, and a
// truncation/mutation fuzz tier over all three formats — no input file may
// crash or abort the process (the ASan leg runs this binary).

#include "qsc/graph/io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <utility>
#include <string>
#include <vector>

#include "qsc/graph/generators.h"
#include "qsc/util/random.h"
#include "rothko_corpus.h"

namespace qsc {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
}

std::string ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string bytes;
  char buf[4096];
  size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, got);
  }
  std::fclose(f);
  return bytes;
}

// Recomputes both qsc-bin checksums after a deliberate payload or header
// mutation, so tests can reach the validators behind the checksum wall.
void ResealQscBin(std::string* bytes) {
  ASSERT_GE(bytes->size(), 48u);
  const uint64_t payload_sum =
      QscBinChecksum(bytes->data() + 48, bytes->size() - 48);
  std::memcpy(&(*bytes)[32], &payload_sum, 8);
  const uint64_t header_sum = QscBinChecksum(bytes->data(), 40);
  std::memcpy(&(*bytes)[40], &header_sum, 8);
}

std::string BinaryBytes(const Graph& g, const std::string& name) {
  const std::string path = TempPath(name);
  EXPECT_TRUE(WriteBinary(g, path).ok());
  return ReadFileBytes(path);
}

// --------------------------------------------------------------------------
// Text edge lists
// --------------------------------------------------------------------------

TEST(EdgeListIoTest, DirectedRoundTrip) {
  const Graph g = Graph::FromEdges(
      4, {{0, 1, 1.5}, {2, 3, -2.25}, {3, 0, 7.0}}, false);
  const std::string path = TempPath("directed.el");
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  const auto back = ReadEdgeList(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_nodes(), 4);
  EXPECT_EQ(back->num_arcs(), 3);
  EXPECT_DOUBLE_EQ(back->ArcWeight(2, 3), -2.25);
  EXPECT_FALSE(back->undirected());
  EXPECT_EQ(*back, g);
}

TEST(EdgeListIoTest, UndirectedRoundTrip) {
  Rng rng(1);
  const Graph g = ErdosRenyiGnm(30, 100, rng);
  const std::string path = TempPath("undirected.el");
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  const auto back = ReadEdgeList(path);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->undirected());
  EXPECT_EQ(back->num_edges(), g.num_edges());
  for (const EdgeTriple& a : g.Arcs()) {
    EXPECT_DOUBLE_EQ(back->ArcWeight(a.src, a.dst), a.weight);
  }
}

TEST(EdgeListIoTest, MissingFileIsNotFound) {
  const auto result = ReadEdgeList("/nonexistent/path/file.el");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(EdgeListIoTest, AcceptsCommentsBlanksAndCrLf) {
  const std::string path = TempPath("comments.el");
  WriteFileBytes(path,
                 "# nodes 3 directed 1\r\n"
                 "\n"
                 "# mid-stream comment\n"
                 "0 1 2.5\r\n"
                 "1 2 -4\n");
  const auto back = ReadEdgeList(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_arcs(), 2);
  EXPECT_DOUBLE_EQ(back->ArcWeight(0, 1), 2.5);
}

TEST(EdgeListIoTest, RejectsMalformedInputDescriptively) {
  const struct {
    const char* text;
    const char* needle;  // expected fragment of the error message
  } cases[] = {
      {"", "missing edge-list header"},
      {"garbage\n", "expected header"},
      {"# nodes 4 directed 1 junk\n", "expected header"},
      {"# nodes -3 directed 1\n", "node count out of range"},
      {"# nodes 99999999999 directed 1\n", "node count out of range"},
      {"# nodes 4 directed 2\n", "directed flag"},
      {"# nodes 4 directed 1\n0 1\n", "expected edge"},
      {"# nodes 4 directed 1\n0 1 2.0 junk\n", "expected edge"},
      {"# nodes 4 directed 1\n0 x 2.0\n", "expected edge"},
      {"# nodes 4 directed 1\n0 9 1.0\n", "out of range"},
      {"# nodes 4 directed 1\n-1 1 1.0\n", "out of range"},
      {"# nodes 4 directed 1\n0 1 inf\n", "non-finite"},
      {"# nodes 4 directed 1\n0 1 nan\n", "non-finite"},
      {"# nodes 4 directed 1\n0 1 1.0", "unterminated"},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.text);
    const std::string path = TempPath("bad.el");
    WriteFileBytes(path, c.text);
    const auto result = ReadEdgeList(path);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(result.status().message().find(c.needle), std::string::npos)
        << "message: " << result.status().message();
  }
  // Line numbers point at the offending line.
  const std::string path = TempPath("bad_line3.el");
  WriteFileBytes(path, "# nodes 4 directed 1\n0 1 1.0\nbroken line\n");
  const auto bad = ReadEdgeList(path);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 3"), std::string::npos)
      << bad.status().message();
}

// --------------------------------------------------------------------------
// DIMACS max-flow
// --------------------------------------------------------------------------

TEST(DimacsIoTest, RoundTrip) {
  Rng rng(2);
  const FlowInstance inst = GridFlowNetwork(5, 4, 9, 9, rng);
  const std::string path = TempPath("flow.dimacs");
  ASSERT_TRUE(
      WriteDimacsMaxFlow(inst.graph, inst.source, inst.sink, path).ok());
  const auto back = ReadDimacsMaxFlow(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->source, inst.source);
  EXPECT_EQ(back->sink, inst.sink);
  EXPECT_EQ(back->graph.num_arcs(), inst.graph.num_arcs());
  for (const EdgeTriple& a : inst.graph.Arcs()) {
    EXPECT_DOUBLE_EQ(back->graph.ArcWeight(a.src, a.dst), a.weight);
  }
}

TEST(DimacsIoTest, RejectsUndirected) {
  const Graph g = Graph::FromEdges(2, {{0, 1, 1.0}}, true);
  EXPECT_FALSE(WriteDimacsMaxFlow(g, 0, 1, TempPath("x.dimacs")).ok());
}

TEST(DimacsIoTest, HandlesLinesLongerThanLegacyBuffers) {
  // Earlier readers used a 256-byte fgets buffer that silently split long
  // lines; comments and whitespace-padded lines of any length must work.
  const std::string path = TempPath("long_lines.dimacs");
  std::string text = "c " + std::string(2000, 'x') + "\n";
  text += "p max 3 1\n";
  text += "n 1 s\n";
  text += "n 3 t\n";
  text += "a" + std::string(500, ' ') + "1 2 4.5\n";
  WriteFileBytes(path, text);
  const auto back = ReadDimacsMaxFlow(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->source, 0);
  EXPECT_EQ(back->sink, 2);
  EXPECT_DOUBLE_EQ(back->graph.ArcWeight(0, 1), 4.5);
}

TEST(DimacsIoTest, RejectsMalformedInputDescriptively) {
  const struct {
    const char* text;
    const char* needle;
  } cases[] = {
      {"", "missing problem line"},
      {"q max 4 2\n", "unknown line prefix"},
      {"p max 4 1\np max 4 1\n", "duplicate problem line"},
      {"p min 4 1\n", "expected problem line"},
      {"p max x 1\n", "expected problem line"},
      {"p max -1 1\n", "node count out of range"},
      {"p max 99999999999 1\n", "node count out of range"},
      {"p max 4 -2\n", "negative arc count"},
      {"a 1 2 3\n", "before problem line"},
      {"n 1 s\n", "before problem line"},
      {"p max 4 1\nn 5 s\n", "node id out of range"},
      {"p max 4 1\nn 0 s\n", "node id out of range"},
      {"p max 4 1\nn 1 s junk\n", "expected node line"},
      {"p max 4 1\nn 1 x\n", "'s' or 't'"},
      {"p max 4 1\nn 1 s\nn 2 s\n", "duplicate source"},
      {"p max 4 1\nn 1 t\nn 2 t\n", "duplicate sink"},
      {"p max 4 1\nn 1 s\nn 1 t\na 1 2 3\n", "source equals sink"},
      {"p max 4 2\nn 1 s\nn 2 t\na 1 2 3\n", "arc count mismatch"},
      {"p max 4 0\nn 1 s\nn 2 t\na 1 2 3\n", "arc count mismatch"},
      {"p max 4 1\nn 1 s\nn 2 t\na 1 2\n", "expected arc line"},
      {"p max 4 1\nn 1 s\nn 2 t\na 1 2 3 junk\n", "expected arc line"},
      {"p max 4 1\nn 1 s\nn 2 t\na 0 2 3\n", "arc endpoint out of range"},
      {"p max 4 1\nn 1 s\nn 2 t\na 1 5 3\n", "arc endpoint out of range"},
      {"p max 4 1\nn 1 s\nn 2 t\na 1 2 -3\n", "finite and >= 0"},
      {"p max 4 1\nn 1 s\nn 2 t\na 1 2 inf\n", "finite and >= 0"},
      {"p max 4 1\nn 1 s\nn 2 t\na 1 2 nan\n", "finite and >= 0"},
      {"p max 4 1\nn 1 s\na 1 2 3\n", "missing source or sink"},
      {"p max 4 1\nn 1 s\nn 2 t\na 1 2 3", "unterminated"},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.text);
    const std::string path = TempPath("bad.dimacs");
    WriteFileBytes(path, c.text);
    const auto result = ReadDimacsMaxFlow(path);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(result.status().message().find(c.needle), std::string::npos)
        << "message: " << result.status().message();
  }
  // Line numbers point at the offending line.
  const std::string path = TempPath("bad_line4.dimacs");
  WriteFileBytes(path, "p max 4 1\nn 1 s\nn 2 t\na 1 9 3\n");
  const auto bad = ReadDimacsMaxFlow(path);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 4"), std::string::npos)
      << bad.status().message();
}

// --------------------------------------------------------------------------
// qsc-bin v1
// --------------------------------------------------------------------------

TEST(QscBinIoTest, RoundTripsEmptyAndTinyGraphs) {
  const Graph empty = Graph::FromEdges(0, {}, false);
  const std::string path = TempPath("empty.qscbin");
  ASSERT_TRUE(WriteBinary(empty, path).ok());
  const auto back = ReadBinary(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, empty);

  // Odd arc count exercises the 4-byte pad between dst and weights.
  const Graph odd = Graph::FromEdges(3, {{0, 1, 2.0}, {1, 2, -0.5},
                                         {2, 0, 3.25}},
                                     false);
  ASSERT_TRUE(WriteBinary(odd, path).ok());
  const auto odd_back = ReadBinary(path);
  ASSERT_TRUE(odd_back.ok()) << odd_back.status().ToString();
  EXPECT_EQ(*odd_back, odd);
}

// The corpus oracle: every (seed, directedness) cell must round-trip
// bit-identically through both the text and the binary format, and the two
// formats must agree with each other — 56 reads in total.
TEST(QscBinIoTest, TextAndBinaryRoundTripAgreeOverCorpus) {
  for (const uint64_t seed : testing_corpus::CorpusSeeds()) {
    for (const bool directed : {false, true}) {
      SCOPED_TRACE("seed " + std::to_string(seed) +
                   (directed ? " directed" : " undirected"));
      const Graph g = testing_corpus::CorpusGraph(seed, directed);

      const std::string bin_path = TempPath("corpus.qscbin");
      ASSERT_TRUE(WriteBinary(g, bin_path).ok());
      const auto from_bin = ReadBinary(bin_path);
      ASSERT_TRUE(from_bin.ok()) << from_bin.status().ToString();
      EXPECT_EQ(*from_bin, g);

      const std::string text_path = TempPath("corpus.el");
      ASSERT_TRUE(WriteEdgeList(g, text_path).ok());
      const auto from_text = ReadEdgeList(text_path);
      ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
      EXPECT_EQ(*from_text, g);

      EXPECT_EQ(*from_bin, *from_text);

      const auto mapped = MapBinary(bin_path);
      ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
      EXPECT_EQ(mapped->Materialize(), g);
    }
  }
}

TEST(QscBinIoTest, MappedViewExposesCsrArrays) {
  const Graph g = Graph::FromEdges(4, {{0, 1, 1.0}, {0, 3, 2.0}, {2, 1, 4.0}},
                                   false);
  const std::string path = TempPath("view.qscbin");
  ASSERT_TRUE(WriteBinary(g, path).ok());
  auto mapped = MapBinary(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped->num_nodes(), 4);
  EXPECT_EQ(mapped->num_arcs(), 3);
  EXPECT_FALSE(mapped->undirected());
  EXPECT_EQ(mapped->offsets()[0], 0);
  EXPECT_EQ(mapped->offsets()[4], 3);
  EXPECT_EQ(mapped->dst()[0], 1);
  EXPECT_EQ(mapped->dst()[1], 3);
  EXPECT_DOUBLE_EQ(mapped->weights()[2], 4.0);

  // Move-only semantics: the view survives a move.
  MappedGraph moved = std::move(*mapped);
  EXPECT_EQ(moved.num_arcs(), 3);
  EXPECT_EQ(moved.Materialize(), g);
}

TEST(QscBinIoTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadBinary("/nonexistent/x.qscbin").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(MapBinary("/nonexistent/x.qscbin").status().code(),
            StatusCode::kNotFound);
}

TEST(QscBinIoTest, RejectsCorruptionDescriptively) {
  const Graph directed = Graph::FromEdges(3, {{0, 1, 2.0}, {0, 2, 3.0}},
                                          false);
  const Graph undirected = Graph::FromEdges(2, {{0, 1, 5.0}}, true);
  const std::string valid = BinaryBytes(directed, "seed.qscbin");
  const std::string valid_undirected =
      BinaryBytes(undirected, "seed_undirected.qscbin");
  const std::string path = TempPath("corrupt.qscbin");

  struct Case {
    const char* name;
    std::string bytes;
    const char* needle;
  };
  std::vector<Case> cases;

  cases.push_back({"too small", "qs", "smaller than the 48-byte header"});
  {
    std::string b = valid;
    b[0] = 'X';
    cases.push_back({"bad magic", b, "bad magic"});
  }
  {
    std::string b = valid;
    b[8] = 2;  // version
    const uint64_t sum = QscBinChecksum(b.data(), 40);
    std::memcpy(&b[40], &sum, 8);
    cases.push_back({"bad version", b, "unsupported version"});
  }
  {
    std::string b = valid;
    b[12] |= 2;  // unknown flag bit
    const uint64_t sum = QscBinChecksum(b.data(), 40);
    std::memcpy(&b[40], &sum, 8);
    cases.push_back({"unknown flag", b, "unknown flag bits"});
  }
  {
    std::string b = valid;
    b[16] ^= 0x7;  // num_nodes, without resealing
    cases.push_back({"header bitflip", b, "header checksum mismatch"});
  }
  {
    std::string b = valid;
    b[b.size() - 1] ^= 0x1;  // payload, without resealing
    cases.push_back({"payload bitflip", b, "payload checksum mismatch"});
  }
  {
    std::string b = valid.substr(0, valid.size() - 8);
    cases.push_back({"truncated", b, "file size mismatch"});
  }
  {
    std::string b = valid + std::string(4, '\0');
    cases.push_back({"trailing bytes", b, "file size mismatch"});
  }
  {
    std::string b = valid;
    const int64_t n = -1;
    std::memcpy(&b[16], &n, 8);
    const uint64_t sum = QscBinChecksum(b.data(), 40);
    std::memcpy(&b[40], &sum, 8);
    cases.push_back({"negative nodes", b, "node count out of range"});
  }
  {
    std::string b = valid;
    const int64_t m = int64_t{1} << 60;
    std::memcpy(&b[24], &m, 8);
    const uint64_t sum = QscBinChecksum(b.data(), 40);
    std::memcpy(&b[40], &sum, 8);
    cases.push_back({"huge arc count", b, "arc count out of range"});
  }
  {
    std::string b = valid;
    const int64_t bad_first = 1;  // offsets[0] must be 0
    std::memcpy(&b[48], &bad_first, 8);
    ResealQscBin(&b);
    cases.push_back({"offsets span", b, "does not span"});
  }
  {
    // directed graph layout: offsets (4 x i64) at 48, dst (2 x i32) at 80.
    std::string b = valid;
    const int32_t bad_head = 7;
    std::memcpy(&b[80], &bad_head, 4);
    ResealQscBin(&b);
    cases.push_back({"head out of range", b, "arc head out of range"});
  }
  {
    std::string b = valid;
    const int32_t dup = 2;  // row 0 becomes [2, 2]
    std::memcpy(&b[80], &dup, 4);
    ResealQscBin(&b);
    cases.push_back({"unsorted row", b, "not strictly sorted"});
  }
  {
    // weights at 48 + 32 + 8 (dst + pad) = 88.
    std::string b = valid;
    const double zero = 0.0;
    std::memcpy(&b[88], &zero, 8);
    ResealQscBin(&b);
    cases.push_back({"zero weight", b, "finite and non-zero"});
  }
  {
    std::string b = valid;
    const double nan = std::nan("");
    std::memcpy(&b[88], &nan, 8);
    ResealQscBin(&b);
    cases.push_back({"nan weight", b, "finite and non-zero"});
  }
  {
    // undirected layout: offsets (3 x i64) at 48, dst (2 x i32) at 72,
    // weights at 80. Breaking one mirror weight must not abort in FromArcs.
    std::string b = valid_undirected;
    const double skew = 6.0;
    std::memcpy(&b[80], &skew, 8);
    ResealQscBin(&b);
    cases.push_back({"mirror weight", b, "disagree on weight"});
  }
  {
    std::string b = valid_undirected;
    const int32_t self = 1;  // arc 1->0 becomes 1->1: mirror 1->0 vanishes
    std::memcpy(&b[76], &self, 4);
    ResealQscBin(&b);
    cases.push_back({"missing mirror", b, "missing mirror arc"});
  }

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    WriteFileBytes(path, c.bytes);
    const auto read = ReadBinary(path);
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(read.status().message().find(c.needle), std::string::npos)
        << "message: " << read.status().message();
    const auto mapped = MapBinary(path);
    ASSERT_FALSE(mapped.ok());
    EXPECT_EQ(mapped.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(mapped.status().message().find(c.needle), std::string::npos)
        << "message: " << mapped.status().message();
  }
}

// --------------------------------------------------------------------------
// Fuzz tier: truncations and byte mutations of valid files must parse
// cleanly or fail with InvalidArgument — never crash (ASan runs this).
// --------------------------------------------------------------------------

template <typename Reader>
void RunFileFuzz(const std::string& valid, const std::string& path,
                 uint64_t seed, const Reader& read) {
  Rng rng(seed);
  for (int iteration = 0; iteration < 200; ++iteration) {
    std::string bytes = valid;
    if (iteration % 2 == 0) {
      bytes.resize(rng.NextBounded(bytes.size() + 1));  // truncate
    } else {
      const int mutations = 1 + static_cast<int>(rng.NextBounded(4));
      for (int m = 0; m < mutations; ++m) {
        bytes[rng.NextBounded(bytes.size())] =
            static_cast<char>(rng.NextBounded(256));
      }
    }
    WriteFileBytes(path, bytes);
    const Status status = read(path);
    if (!status.ok()) {
      EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
          << status.ToString();
      EXPECT_FALSE(status.message().empty());
    }
  }
}

TEST(GraphIoFuzzTest, EdgeListTruncationAndMutationNeverCrashes) {
  const Graph g = testing_corpus::CorpusGraph(3, /*directed=*/true);
  const std::string path = TempPath("fuzz.el");
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  const std::string valid = ReadFileBytes(path);
  RunFileFuzz(valid, path, 20260808,
              [](const std::string& p) { return ReadEdgeList(p).status(); });
}

TEST(GraphIoFuzzTest, DimacsTruncationAndMutationNeverCrashes) {
  Rng rng(11);
  const FlowInstance inst = GridFlowNetwork(6, 5, 7, 7, rng);
  const std::string path = TempPath("fuzz.dimacs");
  ASSERT_TRUE(
      WriteDimacsMaxFlow(inst.graph, inst.source, inst.sink, path).ok());
  const std::string valid = ReadFileBytes(path);
  RunFileFuzz(valid, path, 20260809, [](const std::string& p) {
    return ReadDimacsMaxFlow(p).status();
  });
}

TEST(GraphIoFuzzTest, BinaryTruncationAndMutationNeverCrashes) {
  const Graph g = testing_corpus::CorpusGraph(5, /*directed=*/false);
  const std::string path = TempPath("fuzz.qscbin");
  const std::string valid = BinaryBytes(g, "fuzz_seed.qscbin");
  RunFileFuzz(valid, path, 20260810,
              [](const std::string& p) { return ReadBinary(p).status(); });
  RunFileFuzz(valid, path, 20260811,
              [](const std::string& p) { return MapBinary(p).status(); });
}

}  // namespace
}  // namespace qsc
