#include "qsc/graph/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "qsc/graph/generators.h"
#include "qsc/util/random.h"

namespace qsc {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(EdgeListIoTest, DirectedRoundTrip) {
  const Graph g = Graph::FromEdges(
      4, {{0, 1, 1.5}, {2, 3, -2.25}, {3, 0, 7.0}}, false);
  const std::string path = TempPath("directed.el");
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  const auto back = ReadEdgeList(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_nodes(), 4);
  EXPECT_EQ(back->num_arcs(), 3);
  EXPECT_DOUBLE_EQ(back->ArcWeight(2, 3), -2.25);
  EXPECT_FALSE(back->undirected());
}

TEST(EdgeListIoTest, UndirectedRoundTrip) {
  Rng rng(1);
  const Graph g = ErdosRenyiGnm(30, 100, rng);
  const std::string path = TempPath("undirected.el");
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  const auto back = ReadEdgeList(path);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->undirected());
  EXPECT_EQ(back->num_edges(), g.num_edges());
  for (const EdgeTriple& a : g.Arcs()) {
    EXPECT_DOUBLE_EQ(back->ArcWeight(a.src, a.dst), a.weight);
  }
}

TEST(EdgeListIoTest, MissingFileIsNotFound) {
  const auto result = ReadEdgeList("/nonexistent/path/file.el");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(EdgeListIoTest, BadHeaderIsInvalidArgument) {
  const std::string path = TempPath("bad_header.el");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("garbage\n", f);
  std::fclose(f);
  const auto result = ReadEdgeList(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(DimacsIoTest, RoundTrip) {
  Rng rng(2);
  const FlowInstance inst = GridFlowNetwork(5, 4, 9, 9, rng);
  const std::string path = TempPath("flow.dimacs");
  ASSERT_TRUE(
      WriteDimacsMaxFlow(inst.graph, inst.source, inst.sink, path).ok());
  const auto back = ReadDimacsMaxFlow(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->source, inst.source);
  EXPECT_EQ(back->sink, inst.sink);
  EXPECT_EQ(back->graph.num_arcs(), inst.graph.num_arcs());
  for (const EdgeTriple& a : inst.graph.Arcs()) {
    EXPECT_DOUBLE_EQ(back->graph.ArcWeight(a.src, a.dst), a.weight);
  }
}

TEST(DimacsIoTest, RejectsUndirected) {
  const Graph g = Graph::FromEdges(2, {{0, 1, 1.0}}, true);
  EXPECT_FALSE(WriteDimacsMaxFlow(g, 0, 1, TempPath("x.dimacs")).ok());
}

TEST(DimacsIoTest, IncompleteFileRejected) {
  const std::string path = TempPath("incomplete.dimacs");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("p max 4 2\na 1 2 3\n", f);  // no source/sink lines
  std::fclose(f);
  const auto result = ReadDimacsMaxFlow(path);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace qsc
