// Cross-module integration tests: the full pipelines the paper evaluates,
// at small scale — coloring + reduced graph + solver for each of the three
// applications, plus the paper's headline robustness claim (Figure 2).

#include <gtest/gtest.h>

#include "qsc/centrality/brandes.h"
#include "qsc/centrality/color_pivot.h"
#include "qsc/coloring/q_error.h"
#include "qsc/coloring/reduced_graph.h"
#include "qsc/coloring/rothko.h"
#include "qsc/coloring/stable.h"
#include "qsc/flow/approx_flow.h"
#include "qsc/flow/push_relabel.h"
#include "qsc/graph/datasets.h"
#include "qsc/graph/generators.h"
#include "qsc/graph/perturb.h"
#include "qsc/lp/generators.h"
#include "qsc/lp/reduce.h"
#include "qsc/lp/simplex.h"
#include "qsc/util/stats.h"

namespace qsc {
namespace {

TEST(IntegrationTest, KarateFigure1) {
  // Stable coloring needs 27 colors; a quasi-stable coloring with q <= 3
  // gets by with ~6. The two leaders (nodes 0 and 33) end up separated
  // from the rank-and-file in the coarse coloring.
  const Graph g = KarateClub();
  EXPECT_EQ(StableColoring(g).num_colors(), 27);

  RothkoOptions options;
  options.max_colors = 6;
  const Partition p = RothkoColoring(g, options);
  EXPECT_EQ(p.num_colors(), 6);
  const double q = ComputeQError(g, p).max_q;
  EXPECT_LE(q, 6.0);  // small residual error at 6 colors
  // The leaders (highest-degree nodes) share a small color without the
  // low-degree members.
  EXPECT_LE(p.ColorSize(p.ColorOf(0)), 4);
  EXPECT_LE(p.ColorSize(p.ColorOf(33)), 4);
}

TEST(IntegrationTest, Figure2RobustnessClaim) {
  // Stable coloring shatters after perturbing a compressible graph with a
  // few random edges; q-stable coloring keeps compressing.
  Rng rng(21);
  const Graph g = BlockBiregularGraph(50, 10, 110, rng);  // n=500
  EXPECT_LE(StableColoring(g).num_colors(), 55);

  const Graph noisy = AddRandomEdges(g, 150, rng);  // ~1.4% of edges
  const ColorId stable_colors = StableColoring(noisy).num_colors();
  EXPECT_GT(stable_colors, 250);  // stable coloring degenerates

  RothkoOptions options;
  options.max_colors = 1000;
  options.q_tolerance = 4.0;
  const Partition q4 = RothkoColoring(noisy, options);
  EXPECT_LT(q4.num_colors(), 150);  // q-stable keeps compressing
  EXPECT_LE(ComputeQError(noisy, q4).max_q, 4.0);
}

TEST(IntegrationTest, MaxFlowPipelineAccuracy) {
  Rng rng(22);
  const FlowInstance inst = GridFlowNetwork(16, 8, 10, 30, rng);
  const double exact =
      MaxFlowPushRelabel(inst.graph, inst.source, inst.sink);
  FlowApproxOptions options;
  options.rothko.max_colors = 40;
  const FlowApproxResult approx =
      ApproximateMaxFlow(inst.graph, inst.source, inst.sink, options);
  const double rel = RelativeError(exact, approx.upper_bound);
  EXPECT_GE(approx.upper_bound, exact - 1e-6);  // upper bound
  EXPECT_LE(rel, 2.0);  // and a sane approximation at 40 colors
}

TEST(IntegrationTest, LpPipelineAccuracy) {
  const LpProblem lp = MakeQapLikeLp(5, 31);
  const LpResult exact = SolveSimplex(lp);
  ASSERT_EQ(exact.status, LpStatus::kOptimal);

  LpReduceOptions options;
  options.max_colors = 30;
  const ReducedLp reduced = ReduceLp(lp, options);
  EXPECT_LT(reduced.lp.num_rows, lp.num_rows / 2);
  EXPECT_LT(reduced.lp.num_cols, lp.num_cols / 2);
  const LpResult red = SolveSimplex(reduced.lp);
  ASSERT_EQ(red.status, LpStatus::kOptimal);
  EXPECT_LE(RelativeError(exact.objective, red.objective), 1.6);
}

TEST(IntegrationTest, CentralityPipelineAccuracy) {
  Rng rng(23);
  const Graph g = PowerLawGraph(600, 2400, 2.6, rng);
  const auto exact = BetweennessExact(g);
  ColorPivotOptions options;
  options.rothko.max_colors = 80;
  const auto approx = ApproximateBetweenness(g, options);
  EXPECT_GT(SpearmanCorrelation(approx.scores, exact), 0.8);
}

TEST(IntegrationTest, AnytimeRefinementImprovesFlowBound) {
  // Paper Sec 5.2: Rothko as a co-routine — every few extra colors can
  // only improve (never invalidate) the approximation.
  Rng rng(24);
  const FlowInstance inst = GridFlowNetwork(12, 6, 10, 20, rng);
  const double exact = MaxFlowPushRelabel(inst.graph, inst.source,
                                          inst.sink);
  std::vector<int32_t> labels(inst.graph.num_nodes(), 2);
  labels[inst.source] = 0;
  labels[inst.sink] = 1;
  RothkoOptions options;
  RothkoRefiner refiner(inst.graph, Partition::FromColorIds(labels),
                        options);
  double first_bound = -1.0, last_bound = -1.0;
  for (int round = 0; round < 6; ++round) {
    for (int step = 0; step < 8; ++step) {
      if (!refiner.Step()) break;
    }
    const Graph reduced = BuildReducedGraph(inst.graph, refiner.partition(),
                                            ReducedWeight::kSum);
    const double bound = MaxFlowPushRelabel(
        reduced, refiner.partition().ColorOf(inst.source),
        refiner.partition().ColorOf(inst.sink));
    EXPECT_GE(bound, exact - 1e-6);
    if (first_bound < 0) first_bound = bound;
    last_bound = bound;
  }
  EXPECT_LE(last_bound, first_bound + 1e-9);
}

TEST(IntegrationTest, StableColoringSolvesLpExactly) {
  // q = 0 end-to-end: Grohe et al. dimensionality reduction recovers the
  // exact optimum on a perfectly block-structured LP.
  BlockLpSpec spec;
  spec.num_row_groups = 4;
  spec.num_col_groups = 4;
  spec.rows_per_group = 6;
  spec.cols_per_group = 6;
  spec.noise = 0.0;
  spec.seed = 42;
  LpProblem lp = MakeBlockLp(spec);
  for (int32_t i = 0; i < lp.num_rows; ++i) lp.b[i] = lp.b[(i / 6) * 6];
  const LpResult exact = SolveSimplex(lp);
  LpReduceOptions options;
  options.max_colors = 12;
  options.q_tolerance = 0.0;
  const ReducedLp reduced = ReduceLp(lp, options);
  ASSERT_NEAR(reduced.max_q, 0.0, 1e-9);
  const LpResult red = SolveSimplex(reduced.lp);
  EXPECT_NEAR(RelativeError(exact.objective, red.objective), 1.0, 1e-6);
}

}  // namespace
}  // namespace qsc
