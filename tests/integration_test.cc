// Cross-module integration tests: the full pipelines the paper evaluates,
// at small scale — driven through the qsc/eval harness (workload registry,
// pipeline drivers, differential runner) for each of the three
// applications, plus the paper's headline robustness claim (Figure 2).

#include <gtest/gtest.h>

#include "qsc/coloring/q_error.h"
#include "qsc/coloring/reduced_graph.h"
#include "qsc/coloring/rothko.h"
#include "qsc/coloring/stable.h"
#include "qsc/eval/differential.h"
#include "qsc/eval/pipelines.h"
#include "qsc/eval/suites.h"
#include "qsc/eval/workload.h"
#include "qsc/flow/push_relabel.h"
#include "qsc/graph/datasets.h"
#include "qsc/graph/generators.h"
#include "qsc/graph/perturb.h"
#include "qsc/lp/generators.h"
#include "qsc/lp/reduce.h"
#include "qsc/lp/simplex.h"
#include "qsc/util/stats.h"

namespace qsc {
namespace {

TEST(IntegrationTest, KarateFigure1) {
  // Stable coloring needs 27 colors; a quasi-stable coloring with q <= 3
  // gets by with ~6. The two leaders (nodes 0 and 33) end up separated
  // from the rank-and-file in the coarse coloring.
  const Graph g = KarateClub();
  EXPECT_EQ(StableColoring(g).num_colors(), 27);

  RothkoOptions options;
  options.max_colors = 6;
  const Partition p = RothkoColoring(g, options);
  EXPECT_EQ(p.num_colors(), 6);
  const double q = ComputeQError(g, p).max_q;
  EXPECT_LE(q, 6.0);  // small residual error at 6 colors
  // The leaders (highest-degree nodes) share a small color without the
  // low-degree members.
  EXPECT_LE(p.ColorSize(p.ColorOf(0)), 4);
  EXPECT_LE(p.ColorSize(p.ColorOf(33)), 4);
}

TEST(IntegrationTest, Figure2RobustnessClaim) {
  // Stable coloring shatters after perturbing a compressible graph with a
  // few random edges; q-stable coloring keeps compressing.
  Rng rng(21);
  const Graph g = BlockBiregularGraph(50, 10, 110, rng);  // n=500
  EXPECT_LE(StableColoring(g).num_colors(), 55);

  const Graph noisy = AddRandomEdges(g, 150, rng);  // ~1.4% of edges
  const ColorId stable_colors = StableColoring(noisy).num_colors();
  EXPECT_GT(stable_colors, 250);  // stable coloring degenerates

  RothkoOptions options;
  options.max_colors = 1000;
  options.q_tolerance = 4.0;
  const Partition q4 = RothkoColoring(noisy, options);
  EXPECT_LT(q4.num_colors(), 150);  // q-stable keeps compressing
  EXPECT_LE(ComputeQError(noisy, q4).max_q, 4.0);
}

TEST(IntegrationTest, MaxFlowPipelineAccuracy) {
  // The registered grid workload through the shared pipeline driver: the
  // c^2 reduction upper-bounds the exact flow and stays a sane
  // approximation at 40 colors.
  eval::RegisterBuiltinWorkloads();
  const eval::Workload* w = eval::WorkloadRegistry::Global().Find("maxflow/grid");
  ASSERT_NE(w, nullptr);
  eval::EvalOptions options;
  options.seed = 22;
  const eval::WorkloadResult result = w->Run(options);
  ASSERT_FALSE(result.runs.empty());
  const eval::RunMetrics& finest = result.runs.back();
  EXPECT_EQ(finest.color_budget, 40);
  EXPECT_GE(finest.approx_value, finest.exact_value - 1e-6);  // upper bound
  EXPECT_LE(finest.relative_error, 2.0);
}

TEST(IntegrationTest, LpPipelineAccuracy) {
  eval::EvalOptions options;
  options.lp_oracle = eval::LpOracle::kSimplex;
  const LpProblem lp = MakeQapLikeLp(5, 31);
  const auto runs = eval::RunLpPipeline(lp, options, {30});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_LE(runs[0].relative_error, 1.6);
  // The same budget through ReduceLp directly (the pipeline's reduction
  // path): both dimensions individually shrink by more than half.
  LpReduceOptions reduce_options;
  reduce_options.max_colors = 30;
  const ReducedLp reduced = ReduceLp(lp, reduce_options);
  EXPECT_LT(reduced.lp.num_rows, lp.num_rows / 2);
  EXPECT_LT(reduced.lp.num_cols, lp.num_cols / 2);
  EXPECT_EQ(runs[0].num_colors,
            reduced.lp.num_rows + reduced.lp.num_cols + 2);
}

TEST(IntegrationTest, CentralityPipelineAccuracy) {
  Rng rng(23);
  const Graph g = PowerLawGraph(600, 2400, 2.6, rng);
  eval::EvalOptions options;
  const auto runs = eval::RunCentralityPipeline(g, options, {80});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_GT(runs[0].rank_correlation, 0.8);
}

TEST(IntegrationTest, RegisteredWorkloadsPassDifferentialChecks) {
  // One registered workload per application area through the full
  // invariant suite (paper bound directions, oracle agreement, anytime
  // monotonicity).
  eval::RegisterBuiltinWorkloads();
  eval::EvalOptions options;
  options.seed = 7;
  options.compute_flow_lower_bound = true;
  const eval::DifferentialRunner runner(options);
  for (const char* name :
       {"maxflow/seg-grid", "lp/block", "centrality/powerlaw"}) {
    const eval::Workload* w = eval::WorkloadRegistry::Global().Find(name);
    ASSERT_NE(w, nullptr) << name;
    const eval::DifferentialReport report = runner.Check(*w);
    EXPECT_TRUE(report.ok()) << name << ": " << report.Summary();
    EXPECT_GT(report.checks, 0) << name;
  }
}

TEST(IntegrationTest, WorkloadMetricsReproducibleAcrossRuns) {
  // The reproducibility contract behind BENCH_*.json trajectories: same
  // (workload, seed) => bitwise-identical metric values, timings excluded.
  eval::RegisterBuiltinWorkloads();
  eval::EvalOptions options;
  options.seed = 1234;
  for (const char* name : {"maxflow/grid", "lp/qap", "centrality/ba"}) {
    const eval::Workload* w = eval::WorkloadRegistry::Global().Find(name);
    ASSERT_NE(w, nullptr) << name;
    const eval::WorkloadResult a = w->Run(options);
    const eval::WorkloadResult b = w->Run(options);
    ASSERT_EQ(a.runs.size(), b.runs.size()) << name;
    for (size_t i = 0; i < a.runs.size(); ++i) {
      EXPECT_TRUE(eval::MetricsEquivalent(a.runs[i], b.runs[i]))
          << name << " budget " << a.runs[i].color_budget;
    }
  }
}

TEST(IntegrationTest, AnytimeRefinementImprovesFlowBound) {
  // Paper Sec 5.2: Rothko as a co-routine — every few extra colors can
  // only improve (never invalidate) the approximation.
  Rng rng(24);
  const FlowInstance inst = GridFlowNetwork(12, 6, 10, 20, rng);
  const double exact = MaxFlowPushRelabel(inst.graph, inst.source,
                                          inst.sink);
  std::vector<int32_t> labels(inst.graph.num_nodes(), 2);
  labels[inst.source] = 0;
  labels[inst.sink] = 1;
  RothkoOptions options;
  RothkoRefiner refiner(inst.graph, Partition::FromColorIds(labels),
                        options);
  double first_bound = -1.0, last_bound = -1.0;
  for (int round = 0; round < 6; ++round) {
    for (int step = 0; step < 8; ++step) {
      if (!refiner.Step()) break;
    }
    const Graph reduced = BuildReducedGraph(inst.graph, refiner.partition(),
                                            ReducedWeight::kSum);
    const double bound = MaxFlowPushRelabel(
        reduced, refiner.partition().ColorOf(inst.source),
        refiner.partition().ColorOf(inst.sink));
    EXPECT_GE(bound, exact - 1e-6);
    if (first_bound < 0) first_bound = bound;
    last_bound = bound;
  }
  EXPECT_LE(last_bound, first_bound + 1e-9);
}

TEST(IntegrationTest, StableColoringSolvesLpExactly) {
  // q = 0 end-to-end: Grohe et al. dimensionality reduction recovers the
  // exact optimum on a perfectly block-structured LP.
  BlockLpSpec spec;
  spec.num_row_groups = 4;
  spec.num_col_groups = 4;
  spec.rows_per_group = 6;
  spec.cols_per_group = 6;
  spec.noise = 0.0;
  spec.seed = 42;
  LpProblem lp = MakeBlockLp(spec);
  for (int32_t i = 0; i < lp.num_rows; ++i) lp.b[i] = lp.b[(i / 6) * 6];
  const LpResult exact = SolveSimplex(lp);
  LpReduceOptions options;
  options.max_colors = 12;
  options.q_tolerance = 0.0;
  const ReducedLp reduced = ReduceLp(lp, options);
  ASSERT_NEAR(reduced.max_q, 0.0, 1e-9);
  const LpResult red = SolveSimplex(reduced.lp);
  EXPECT_NEAR(RelativeError(exact.objective, red.objective), 1.0, 1e-6);
}

}  // namespace
}  // namespace qsc
