// Unit tests for the bench harness's robust summary statistics
// (median/MAD): exact values on synthetic samples, outlier insensitivity,
// and the empty/single-sample edge cases.

#include "qsc/bench/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace qsc {
namespace bench {
namespace {

TEST(SummarizeTest, EmptyInputIsAllZero) {
  const SampleStats s = Summarize({});
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.median, 0.0);
  EXPECT_EQ(s.mad, 0.0);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(SummarizeTest, SingleSample) {
  const SampleStats s = Summarize({3.5});
  EXPECT_EQ(s.count, 1);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
  EXPECT_DOUBLE_EQ(s.mad, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
}

TEST(SummarizeTest, OddCountExactValues) {
  // median 3; deviations {2, 1, 0, 1, 2} -> MAD 1.
  const SampleStats s = Summarize({5.0, 2.0, 3.0, 1.0, 4.0});
  EXPECT_EQ(s.count, 5);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.mad, 1.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
}

TEST(SummarizeTest, EvenCountAveragesMiddlePair) {
  // sorted {1, 2, 4, 8}: median (2+4)/2 = 3; deviations {2, 1, 1, 5}
  // sorted {1, 1, 2, 5} -> MAD (1+2)/2 = 1.5.
  const SampleStats s = Summarize({8.0, 1.0, 4.0, 2.0});
  EXPECT_EQ(s.count, 4);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.mad, 1.5);
}

TEST(SummarizeTest, MedianAndMadIgnoreOneSidedOutliers) {
  // The contamination model of a busy CI runner: a minority of repeats are
  // much slower. Median/MAD must not move; mean/max do.
  const SampleStats clean = Summarize({1.0, 1.0, 1.0, 1.0, 1.0});
  const SampleStats noisy = Summarize({1.0, 1.0, 1.0, 1.0, 50.0});
  EXPECT_DOUBLE_EQ(clean.median, noisy.median);
  EXPECT_DOUBLE_EQ(clean.mad, noisy.mad);
  EXPECT_GT(noisy.mean, clean.mean);
  EXPECT_DOUBLE_EQ(noisy.max, 50.0);
}

TEST(SummarizeTest, ConstantSamplesHaveZeroMad) {
  const SampleStats s = Summarize({2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(s.median, 2.0);
  EXPECT_DOUBLE_EQ(s.mad, 0.0);
}

}  // namespace
}  // namespace bench
}  // namespace qsc
