#include "qsc/util/table.h"

#include <gtest/gtest.h>

namespace qsc {
namespace {

TEST(TablePrinterTest, CsvRoundsTrip) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "x"});
  t.AddRow({"2", "y"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,x\n2,y\n");
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinterTest, MismatchedRowDies) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "QSC_CHECK");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(FormatSecondsTest, Ranges) {
  EXPECT_EQ(FormatSeconds(0.0000005), "0us");
  EXPECT_EQ(FormatSeconds(0.0005), "500us");
  EXPECT_EQ(FormatSeconds(0.25), "250.0ms");
  EXPECT_EQ(FormatSeconds(2.5), "2.50s");
  EXPECT_EQ(FormatSeconds(158.0), "2m38s");
}

TEST(FormatCountTest, ThousandsSeparators) {
  EXPECT_EQ(FormatCount(7), "7");
  EXPECT_EQ(FormatCount(1234), "1 234");
  EXPECT_EQ(FormatCount(1234567), "1 234 567");
  EXPECT_EQ(FormatCount(-1234), "-1 234");
}

TEST(FormatRatioTest, SmallAndLarge) {
  EXPECT_EQ(FormatRatio(1.29), "1.29:1");
  EXPECT_EQ(FormatRatio(87.4), "87:1");
  EXPECT_EQ(FormatRatio(3500.0), "3 500:1");
}

}  // namespace
}  // namespace qsc
