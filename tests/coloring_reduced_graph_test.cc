#include "qsc/coloring/reduced_graph.h"

#include <gtest/gtest.h>

#include "qsc/coloring/rothko.h"
#include "qsc/coloring/stable.h"
#include "qsc/graph/generators.h"
#include "qsc/util/random.h"

namespace qsc {
namespace {

TEST(ReducedGraphTest, SumWeights) {
  // Colors {0,1} and {2,3} with three unit arcs across.
  const Graph g = Graph::FromEdges(
      4, {{0, 2, 1.0}, {0, 3, 1.0}, {1, 2, 1.0}}, false);
  const Partition p = Partition::FromColorIds({0, 0, 1, 1});
  const Graph r = BuildReducedGraph(g, p, ReducedWeight::kSum);
  EXPECT_EQ(r.num_nodes(), 2);
  EXPECT_DOUBLE_EQ(r.ArcWeight(0, 1), 3.0);
  EXPECT_FALSE(r.HasArc(1, 0));
}

TEST(ReducedGraphTest, MeanWeights) {
  const Graph g = Graph::FromEdges(
      4, {{0, 2, 1.0}, {0, 3, 1.0}, {1, 2, 1.0}}, false);
  const Partition p = Partition::FromColorIds({0, 0, 1, 1});
  const Graph r = BuildReducedGraph(g, p, ReducedWeight::kMean);
  EXPECT_DOUBLE_EQ(r.ArcWeight(0, 1), 3.0 / 4.0);
}

TEST(ReducedGraphTest, SqrtNormalizedWeights) {
  const Graph g = Graph::FromEdges(
      4, {{0, 2, 1.0}, {0, 3, 1.0}, {1, 2, 1.0}}, false);
  const Partition p = Partition::FromColorIds({0, 0, 1, 1});
  const Graph r = BuildReducedGraph(g, p, ReducedWeight::kSqrtNormalized);
  EXPECT_DOUBLE_EQ(r.ArcWeight(0, 1), 3.0 / 2.0);
}

TEST(ReducedGraphTest, DiscretePartitionIsIdentity) {
  Rng rng(1);
  const Graph g = ErdosRenyiGnm(20, 50, rng);
  const Graph r =
      BuildReducedGraph(g, Partition::Discrete(20), ReducedWeight::kSum);
  EXPECT_EQ(r.num_nodes(), g.num_nodes());
  EXPECT_EQ(r.num_arcs(), g.num_arcs());
  for (const EdgeTriple& a : g.Arcs()) {
    EXPECT_DOUBLE_EQ(r.ArcWeight(a.src, a.dst), a.weight);
  }
}

TEST(ReducedGraphTest, TrivialPartitionIsOneNode) {
  Rng rng(2);
  const Graph g = ErdosRenyiGnm(20, 50, rng);
  const Graph r =
      BuildReducedGraph(g, Partition::Trivial(20), ReducedWeight::kSum);
  EXPECT_EQ(r.num_nodes(), 1);
  // One self-loop carrying the total weight (each undirected edge counted
  // in both arc directions).
  EXPECT_DOUBLE_EQ(r.ArcWeight(0, 0), g.TotalWeight());
}

TEST(ReducedGraphTest, TotalWeightPreservedUnderSum) {
  Rng rng(3);
  const Graph g = BarabasiAlbert(100, 3, rng);
  RothkoOptions options;
  options.max_colors = 12;
  const Partition p = RothkoColoring(g, options);
  const Graph r = BuildReducedGraph(g, p, ReducedWeight::kSum);
  EXPECT_NEAR(r.TotalWeight(), g.TotalWeight(), 1e-6);
}

TEST(ReducedGraphTest, UndirectedStaysUndirected) {
  Rng rng(4);
  const Graph g = ErdosRenyiGnm(30, 80, rng);
  const Partition p = StableColoring(g);
  const Graph r = BuildReducedGraph(g, p, ReducedWeight::kSum);
  EXPECT_TRUE(r.undirected());
  for (const EdgeTriple& a : r.Arcs()) {
    EXPECT_DOUBLE_EQ(r.ArcWeight(a.dst, a.src), a.weight);
  }
}

TEST(ReducedGraphTest, EdgeExistsIffMembersConnect) {
  Rng rng(5);
  const Graph g = BlockBiregularGraph(8, 4, 12, rng);
  std::vector<int32_t> labels(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) labels[v] = v / 4;
  const Partition p = Partition::FromColorIds(labels);
  const Graph r = BuildReducedGraph(g, p, ReducedWeight::kSum);
  for (ColorId i = 0; i < 8; ++i) {
    for (ColorId j = 0; j < 8; ++j) {
      bool any = false;
      for (NodeId u : p.Members(i)) {
        for (NodeId v : p.Members(j)) any |= g.HasArc(u, v);
      }
      EXPECT_EQ(r.HasArc(i, j), any) << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace qsc
