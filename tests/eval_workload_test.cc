// Tests for the qsc/eval workload layer: registry contents and lookup,
// pipeline record shape per application area, budget overrides, seed
// reproducibility, and JSON serialization of results.

#include "qsc/eval/workload.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "qsc/eval/json.h"
#include "qsc/eval/pipelines.h"
#include "qsc/eval/suites.h"

namespace qsc {
namespace eval {
namespace {

TEST(WorkloadRegistryTest, BuiltinsCoverEveryApplicationArea) {
  RegisterBuiltinWorkloads();
  RegisterBuiltinWorkloads();  // idempotent
  const auto workloads = WorkloadRegistry::Global().List();
  EXPECT_GE(workloads.size(), 9u);
  std::set<Application> areas;
  std::set<std::string> names;
  for (const Workload* w : workloads) {
    areas.insert(w->area());
    EXPECT_TRUE(names.insert(w->name()).second) << "duplicate " << w->name();
    EXPECT_FALSE(w->info().default_budgets.empty()) << w->name();
    // Names follow the "<area>/<scenario>" convention.
    EXPECT_EQ(w->name().rfind(std::string(ApplicationName(w->area())) + "/", 0),
              0u)
        << w->name();
  }
  EXPECT_EQ(areas.size(), 3u);
}

TEST(WorkloadRegistryTest, FindIsExactAndMissReturnsNull) {
  RegisterBuiltinWorkloads();
  EXPECT_NE(WorkloadRegistry::Global().Find("maxflow/seg-grid"), nullptr);
  EXPECT_EQ(WorkloadRegistry::Global().Find("maxflow/nope"), nullptr);
  EXPECT_EQ(WorkloadRegistry::Global().Find("maxflow"), nullptr);
}

TEST(WorkloadRunTest, FlowRecordsHaveFlowMetrics) {
  RegisterBuiltinWorkloads();
  const Workload* w = WorkloadRegistry::Global().Find("maxflow/grid");
  ASSERT_NE(w, nullptr);
  EvalOptions options;
  options.seed = 3;
  options.color_budgets = {6, 12};
  const WorkloadResult result = w->Run(options);
  EXPECT_EQ(result.workload, "maxflow/grid");
  EXPECT_EQ(result.seed, 3u);
  ASSERT_EQ(result.runs.size(), 2u);  // budget override respected
  for (const RunMetrics& m : result.runs) {
    EXPECT_GT(m.exact_value, 0.0);
    EXPECT_GE(m.approx_value, m.exact_value - 1e-6);  // upper bound
    EXPECT_GE(m.relative_error, 1.0);
    EXPECT_TRUE(std::isnan(m.rank_correlation));  // not a centrality run
    EXPECT_LE(m.num_colors, m.color_budget);
    EXPECT_GE(m.max_q, 0.0);
  }
  // Budgets are swept ascending regardless of input order.
  EXPECT_LT(result.runs[0].color_budget, result.runs[1].color_budget);
}

TEST(WorkloadRunTest, CentralityRecordsHaveRankCorrelation) {
  RegisterBuiltinWorkloads();
  const Workload* w = WorkloadRegistry::Global().Find("centrality/karate");
  ASSERT_NE(w, nullptr);
  const WorkloadResult result = w->Run(EvalOptions{});
  ASSERT_FALSE(result.runs.empty());
  for (const RunMetrics& m : result.runs) {
    EXPECT_TRUE(std::isnan(m.exact_value));
    EXPECT_GE(m.rank_correlation, -1.0 - 1e-9);
    EXPECT_LE(m.rank_correlation, 1.0 + 1e-9);
  }
}

TEST(WorkloadRunTest, LpRecordsTrackReducedDimensions) {
  RegisterBuiltinWorkloads();
  const Workload* w = WorkloadRegistry::Global().Find("lp/block");
  ASSERT_NE(w, nullptr);
  EvalOptions options;
  options.seed = 5;
  options.lp_oracle = LpOracle::kSimplex;
  const WorkloadResult result = w->Run(options);
  ASSERT_FALSE(result.runs.empty());
  for (const RunMetrics& m : result.runs) {
    EXPECT_TRUE(std::isfinite(m.exact_value));
    EXPECT_TRUE(std::isfinite(m.approx_value));
    EXPECT_GE(m.relative_error, 1.0);
    EXPECT_LE(m.num_colors, m.color_budget);
  }
}

TEST(WorkloadRunTest, SameSeedReproducesMetricsDifferentSeedDoesNot) {
  RegisterBuiltinWorkloads();
  const Workload* w = WorkloadRegistry::Global().Find("maxflow/seg-grid");
  ASSERT_NE(w, nullptr);
  EvalOptions options;
  options.seed = 77;
  const WorkloadResult a = w->Run(options);
  const WorkloadResult b = w->Run(options);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_TRUE(MetricsEquivalent(a.runs[i], b.runs[i]));
  }

  options.seed = 78;
  const WorkloadResult c = w->Run(options);
  bool any_difference = false;
  for (size_t i = 0; i < a.runs.size(); ++i) {
    any_difference = any_difference || !MetricsEquivalent(a.runs[i], c.runs[i]);
  }
  EXPECT_TRUE(any_difference);  // the seed actually drives the instance
}

TEST(WorkloadJsonTest, ResultSerializesWithMetricsAndTiming) {
  RegisterBuiltinWorkloads();
  const Workload* w = WorkloadRegistry::Global().Find("lp/qap");
  ASSERT_NE(w, nullptr);
  EvalOptions options;
  options.color_budgets = {8};
  const WorkloadResult result = w->Run(options);

  JsonWriter json;
  WriteResultJson(result, json);
  const std::string& text = json.str();
  EXPECT_NE(text.find("\"workload\":\"lp/qap\""), std::string::npos);
  EXPECT_NE(text.find("\"area\":\"lp\""), std::string::npos);
  EXPECT_NE(text.find("\"seed\":1"), std::string::npos);
  EXPECT_NE(text.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(text.find("\"timing\":{"), std::string::npos);
  EXPECT_NE(text.find("\"relative_error\":"), std::string::npos);
  // Flow-only fields serialize as null for LP runs.
  EXPECT_NE(text.find("\"lower_bound\":null"), std::string::npos);

  // Serialization of the metric fields is itself reproducible: strip the
  // timing objects and compare against a second run.
  JsonWriter json2;
  WriteResultJson(w->Run(options), json2);
  auto strip_timing = [](std::string s) {
    for (size_t at = s.find("\"timing\":{"); at != std::string::npos;
         at = s.find("\"timing\":{", at + 1)) {
      const size_t end = s.find('}', at);
      s.erase(at, end - at + 1);
    }
    return s;
  };
  EXPECT_EQ(strip_timing(text), strip_timing(json2.str()));
}

TEST(PipelineTest, SortsAndDeduplicatesBudgets) {
  RegisterBuiltinWorkloads();
  Rng rng(9);
  const FlowInstance inst = GridFlowNetwork(8, 5, 6, 15, rng);
  const auto runs = RunMaxFlowPipeline(inst, EvalOptions{}, {20, 5, 20, 10});
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].color_budget, 5);
  EXPECT_EQ(runs[1].color_budget, 10);
  EXPECT_EQ(runs[2].color_budget, 20);
}

TEST(SuitesTest, DatasetSuitesMatchTheBenchIndex) {
  // The bench experiment index (names + paper names) must stay stable;
  // bench/workloads.h re-exports these.
  const auto general = GeneralGraphSuite();
  ASSERT_EQ(general.size(), 3u);
  EXPECT_EQ(general[0].name, "karate");
  EXPECT_TRUE(general[0].real);
  EXPECT_EQ(general[0].graph.num_nodes(), 34);

  const auto lps = LpSuite();
  ASSERT_EQ(lps.size(), 4u);
  EXPECT_EQ(lps[0].paper_name, "qap15");
  EXPECT_GT(lps[0].lp.num_cols, lps[0].lp.num_rows);  // cols outnumber rows
}

}  // namespace
}  // namespace eval
}  // namespace qsc
