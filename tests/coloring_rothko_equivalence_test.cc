// Old-vs-new Rothko equivalence: the flat sparse-row refiner
// (qsc/coloring/rothko.cc) must make bit-identical split decisions to the
// frozen pre-optimization implementation (rothko_reference.h). Compared
// over the shared 56-graph property corpus: the full history() trace
// (split color, new color, witness error, color count — everything except
// wall-clock), the final partition, and the error trajectory.
//
// Since the parallel split scorer (RothkoOptions::pool), every corpus
// point also runs at pool sizes 1, 2, and 8: the thread count must change
// nothing — the deterministic ordered commit makes every pool size
// bit-identical to the sequential reference.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "qsc/coloring/partition.h"
#include "qsc/coloring/rothko.h"
#include "qsc/graph/graph.h"
#include "qsc/parallel/thread_pool.h"
#include "rothko_corpus.h"
#include "rothko_reference.h"

namespace qsc {
namespace {

class RothkoEquivalenceTest
    : public testing::TestWithParam<
          std::tuple<uint64_t, bool, RothkoOptions::SplitMean, int>> {};

TEST_P(RothkoEquivalenceTest, SplitHistoryMatchesReferenceImplementation) {
  const auto [seed, directed, split_mean, threads] = GetParam();
  const Graph g = testing_corpus::CorpusGraph(seed, directed);

  ThreadPool pool(threads);
  RothkoOptions options;
  options.split_mean = split_mean;
  options.max_colors = g.num_nodes();  // run all the way to stability
  options.pool = &pool;

  RothkoRefiner optimized(g, Partition::Trivial(g.num_nodes()), options);
  reference::ReferenceRefiner ref(g, Partition::Trivial(g.num_nodes()),
                                  options);

  // Drive both step by step so a divergence is pinned to the exact split.
  for (int step = 0;; ++step) {
    ASSERT_EQ(optimized.CurrentMaxError(), ref.CurrentMaxError())
        << "max q-error diverged before step " << step;
    const bool opt_more = optimized.Step();
    const bool ref_more = ref.Step();
    ASSERT_EQ(opt_more, ref_more) << "termination diverged at step " << step;
    if (!opt_more) break;
  }

  const std::vector<RothkoStep>& opt_hist = optimized.history();
  const std::vector<RothkoStep>& ref_hist = ref.history();
  ASSERT_EQ(opt_hist.size(), ref_hist.size());
  for (size_t i = 0; i < opt_hist.size(); ++i) {
    EXPECT_EQ(opt_hist[i].split_color, ref_hist[i].split_color)
        << "split " << i;
    EXPECT_EQ(opt_hist[i].new_color, ref_hist[i].new_color) << "split " << i;
    // Bitwise: both implementations must aggregate the same doubles in the
    // same order.
    EXPECT_EQ(opt_hist[i].witness_error, ref_hist[i].witness_error)
        << "split " << i;
    EXPECT_EQ(opt_hist[i].num_colors, ref_hist[i].num_colors) << "split " << i;
  }

  EXPECT_TRUE(optimized.partition() == ref.partition());
}

std::string EquivalenceParamName(
    const testing::TestParamInfo<RothkoEquivalenceTest::ParamType>& info) {
  return "seed" + std::to_string(std::get<0>(info.param)) +
         (std::get<1>(info.param) ? "_directed_" : "_undirected_") +
         (std::get<2>(info.param) == RothkoOptions::SplitMean::kGeometric
              ? "geometric"
              : "arithmetic") +
         "_threads" + std::to_string(std::get<3>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RothkoEquivalenceTest,
    testing::Combine(testing::ValuesIn(testing_corpus::CorpusSeeds()),
                     testing::Bool(),
                     testing::Values(RothkoOptions::SplitMean::kArithmetic,
                                     RothkoOptions::SplitMean::kGeometric),
                     testing::Values(1, 2, 8)),
    EquivalenceParamName);

}  // namespace
}  // namespace qsc
