// Unit tests for the Rothko hot-path containers (flat_rows.h): sorted-row
// invariants of FlatWeightRows (insert/accumulate/erase with the zero
// tolerance) and epoch semantics of EpochScratch (O(1) reuse, freshness
// reporting, touched-key ordering).

#include "qsc/coloring/flat_rows.h"

#include <gtest/gtest.h>

#include <vector>

namespace qsc {
namespace {

TEST(FlatWeightRowsTest, AddInsertsSortedAndAccumulates) {
  FlatWeightRows rows;
  rows.Reset(2);
  rows.Add(0, 5, 1.0);
  rows.Add(0, 2, 2.0);
  rows.Add(0, 9, 3.0);
  rows.Add(0, 5, 0.5);  // accumulate onto existing key

  const FlatWeightRows::Row& row = rows.RowOf(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0].key, 2);
  EXPECT_EQ(row[1].key, 5);
  EXPECT_EQ(row[2].key, 9);
  EXPECT_DOUBLE_EQ(row[1].weight, 1.5);
  EXPECT_TRUE(rows.RowOf(1).empty());

  EXPECT_DOUBLE_EQ(rows.WeightOrZero(0, 9), 3.0);
  EXPECT_DOUBLE_EQ(rows.WeightOrZero(0, 7), 0.0);
  EXPECT_EQ(rows.Find(0, 7), nullptr);
  ASSERT_NE(rows.Find(0, 2), nullptr);
  EXPECT_DOUBLE_EQ(rows.Find(0, 2)->weight, 2.0);
}

TEST(FlatWeightRowsTest, SubtractErasesOnResidue) {
  FlatWeightRows rows;
  rows.Reset(1);
  rows.Add(0, 3, 1.25);
  rows.Add(0, 4, 2.0);
  rows.Subtract(0, 3, 1.25);  // exact cancel -> erased
  EXPECT_EQ(rows.Find(0, 3), nullptr);
  ASSERT_EQ(rows.RowOf(0).size(), 1u);
  EXPECT_EQ(rows.RowOf(0)[0].key, 4);

  rows.Subtract(0, 4, 0.5);
  EXPECT_DOUBLE_EQ(rows.WeightOrZero(0, 4), 1.5);
}

TEST(FlatWeightRowsTest, SubtractFromAbsentEntryMaterializesNegation) {
  // Entries can legitimately vanish when +w/-w arc weights cancel within
  // the zero tolerance; a later move of one endpoint subtracts from the
  // implicit 0 and must re-create the entry rather than touch a neighbor.
  FlatWeightRows rows;
  rows.Reset(1);
  rows.Add(0, 2, 1.0);
  rows.Add(0, 1, 1.0);
  rows.Add(0, 1, -1.0);  // cancels -> entry for key 1 dropped
  EXPECT_EQ(rows.Find(0, 1), nullptr);

  rows.Subtract(0, 1, 1.0);
  EXPECT_DOUBLE_EQ(rows.WeightOrZero(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(rows.WeightOrZero(0, 2), 1.0);  // neighbor untouched
  rows.Subtract(0, 3, 1e-13);  // within tolerance: stays absent
  EXPECT_EQ(rows.Find(0, 3), nullptr);
}

TEST(FlatWeightRowsTest, AddWithinToleranceDoesNotCreateEntry) {
  FlatWeightRows rows;
  rows.Reset(1);
  rows.Add(0, 1, 1e-13);  // below kZeroWeightTolerance
  EXPECT_TRUE(rows.RowOf(0).empty());
  // Accumulating onto an existing entry down into the tolerance erases it,
  // matching the map-based AddWeight semantics.
  rows.Add(0, 1, 1.0);
  rows.Add(0, 1, -1.0 + 1e-13);
  EXPECT_TRUE(rows.RowOf(0).empty());
}

TEST(FlatWeightRowsTest, ResetClearsAllRows) {
  FlatWeightRows rows;
  rows.Reset(1);
  rows.Add(0, 1, 1.0);
  rows.Reset(3);
  EXPECT_TRUE(rows.RowOf(0).empty());
  EXPECT_TRUE(rows.RowOf(2).empty());
}

TEST(EpochScratchTest, SlotsResetLogicallyAcrossEpochs) {
  EpochScratch<double> scratch;
  scratch.Grow(4);
  scratch.NewEpoch();
  bool fresh = false;
  scratch.Slot(2, &fresh) = 5.0;
  EXPECT_TRUE(fresh);
  scratch.Slot(2, &fresh) += 1.0;
  EXPECT_FALSE(fresh);
  EXPECT_DOUBLE_EQ(scratch.At(2), 6.0);
  EXPECT_TRUE(scratch.Contains(2));
  EXPECT_FALSE(scratch.Contains(3));

  // Next epoch: same physical slot, logically default again.
  scratch.NewEpoch();
  EXPECT_FALSE(scratch.Contains(2));
  EXPECT_DOUBLE_EQ(scratch.Slot(2, &fresh), 0.0);
  EXPECT_TRUE(fresh);
}

TEST(EpochScratchTest, TouchedListsKeysInFirstTouchOrder) {
  EpochScratch<char> scratch;
  scratch.Grow(10);
  scratch.NewEpoch();
  scratch.Touch(7);
  scratch.Touch(1);
  scratch.Touch(7);  // re-touch must not duplicate
  scratch.Touch(4);
  EXPECT_EQ(scratch.touched(), (std::vector<ColorId>{7, 1, 4}));
  scratch.NewEpoch();
  EXPECT_TRUE(scratch.touched().empty());
}

TEST(EpochScratchTest, GrowPreservesCurrentEpochContents) {
  EpochScratch<int> scratch;
  scratch.Grow(2);
  scratch.NewEpoch();
  bool fresh = false;
  scratch.Slot(1, &fresh) = 42;
  scratch.Grow(8);  // mid-epoch growth (a split created new colors)
  EXPECT_TRUE(scratch.Contains(1));
  EXPECT_EQ(scratch.At(1), 42);
  EXPECT_FALSE(scratch.Contains(5));
}

}  // namespace
}  // namespace qsc
