#include "qsc/flow/uniform_flow.h"

#include <gtest/gtest.h>

#include <vector>

#include "qsc/graph/generators.h"

namespace qsc {
namespace {

TEST(MaxUniformFlowTest, CompleteBipartiteCarriesEverything) {
  // K_{2,2} with unit capacities is (2,2)-biregular: by Corollary 9 the
  // maximum uniform flow equals the total capacity.
  const Graph g = Graph::FromEdges(
      4, {{0, 2, 1.0}, {0, 3, 1.0}, {1, 2, 1.0}, {1, 3, 1.0}}, false);
  EXPECT_NEAR(MaxUniformFlow(g, {0, 1}, {2, 3}), 4.0, 1e-5);
}

TEST(MaxUniformFlowTest, BiregularReachesTotalCapacity) {
  // 3-regular bipartite graph on 4+4 nodes (cyclic pattern).
  std::vector<EdgeTriple> arcs;
  for (NodeId i = 0; i < 4; ++i) {
    for (int d = 0; d < 3; ++d) {
      arcs.push_back({i, static_cast<NodeId>(4 + (i + d) % 4), 1.0});
    }
  }
  const Graph g = Graph::FromEdges(8, arcs, false);
  EXPECT_NEAR(MaxUniformFlow(g, {0, 1, 2, 3}, {4, 5, 6, 7}), 12.0, 1e-5);
}

TEST(MaxUniformFlowTest, IsolatedSourceForcesZero) {
  // Source 1 has no edges: the uniform share F/|X| must be 0.
  const Graph g = Graph::FromEdges(4, {{0, 2, 5.0}, {0, 3, 5.0}}, false);
  EXPECT_DOUBLE_EQ(MaxUniformFlow(g, {0, 1}, {2, 3}), 0.0);
}

TEST(MaxUniformFlowTest, ShiftedDiagonalIsZero) {
  // Paper Example 7's uniformity contradiction: X = {0,1}, Y = {2,3,4}
  // with 0 -> {2,3} and 1 -> {4}. Target uniformity forces every target to
  // receive F/3, source uniformity forces node 1 to send F/2; but node 1's
  // outflow equals target 4's inflow, so F/2 = F/3 and F = 0.
  const Graph g = Graph::FromEdges(
      5, {{0, 2, 1.0}, {0, 3, 1.0}, {1, 4, 1.0}}, false);
  EXPECT_NEAR(MaxUniformFlow(g, {0, 1}, {2, 3, 4}), 0.0, 1e-4);
}

TEST(MaxUniformFlowTest, AsymmetricSidesLimitedByPerNodeShare) {
  // X = {0}, Y = {1, 2}: c(0,1)=1, c(0,2)=3. Uniform flow needs equal
  // inflow at 1 and 2, so F <= 2 * 1 = 2; F=2 is feasible (1 to each).
  const Graph g = Graph::FromEdges(3, {{0, 1, 1.0}, {0, 2, 3.0}}, false);
  EXPECT_NEAR(MaxUniformFlow(g, {0}, {1, 2}), 2.0, 1e-5);
}

TEST(MaxUniformFlowTest, BottleneckScalesDown) {
  // K_{2,2} but one edge has capacity 0.25: each target can still pull
  // equal shares until the weak edge's side saturates.
  const Graph g = Graph::FromEdges(
      4, {{0, 2, 1.0}, {0, 3, 1.0}, {1, 2, 1.0}, {1, 3, 0.25}}, false);
  const double f = MaxUniformFlow(g, {0, 1}, {2, 3});
  // Node 1's capacity is 1.25, so F <= 2.5; also feasibility requires
  // routing F/2 into node 3 with c(.,3) = 1.25 -> F <= 2.5.
  EXPECT_NEAR(f, 2.5, 1e-4);
}

TEST(MaxUniformFlowTest, UniformFlowAtMostTotalCapacity) {
  Rng rng(1);
  const Graph g = CompleteBipartiteGraph(4, 6);
  const std::vector<NodeId> xs{0, 1, 2, 3};
  std::vector<NodeId> ys;
  for (NodeId v = 4; v < 10; ++v) ys.push_back(v);
  const double f = MaxUniformFlow(g, xs, ys);
  EXPECT_LE(f, g.num_edges() + 1e-6);
  EXPECT_NEAR(f, 24.0, 1e-4);  // complete bipartite is biregular
}

}  // namespace
}  // namespace qsc
