// The shared 56-graph Rothko property corpus: 14 fixed seeds x
// {directed, undirected} x {arithmetic, geometric} split means. Both the
// anytime property sweep (coloring_rothko_property_test.cc) and the
// old-vs-new equivalence test (coloring_rothko_equivalence_test.cc) draw
// their instances from here, so "the property corpus" means the same 56
// (graph, options) pairs everywhere.

#ifndef QSC_TESTS_ROTHKO_CORPUS_H_
#define QSC_TESTS_ROTHKO_CORPUS_H_

#include <cstdint>
#include <vector>

#include "qsc/coloring/rothko.h"
#include "qsc/graph/generators.h"
#include "qsc/graph/graph.h"
#include "qsc/util/random.h"

namespace qsc {
namespace testing_corpus {

// Random directed multigraph with integer weights in [1, 8]; duplicates
// coalesce, so some arcs end up heavier — a rougher degree profile than
// ErdosRenyiGnm gives.
inline Graph RandomDirectedGraph(NodeId num_nodes, int64_t num_arcs,
                                 Rng& rng) {
  std::vector<EdgeTriple> arcs;
  arcs.reserve(num_arcs);
  for (int64_t i = 0; i < num_arcs; ++i) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(num_nodes));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(num_nodes));
    arcs.push_back({u, v, static_cast<double>(rng.UniformInt(1, 8))});
  }
  return Graph::FromEdges(num_nodes, arcs, /*undirected=*/false);
}

// The corpus instance for one (seed, directedness) cell: 60 nodes, density
// high enough that the trivial partition is never stable.
inline Graph CorpusGraph(uint64_t seed, bool directed) {
  Rng rng(seed);
  return directed ? RandomDirectedGraph(60, 240, rng)
                  : ErdosRenyiGnm(60, 180, rng);
}

inline std::vector<uint64_t> CorpusSeeds() {
  return {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14};
}

}  // namespace testing_corpus
}  // namespace qsc

#endif  // QSC_TESTS_ROTHKO_CORPUS_H_
