#include "qsc/coloring/rothko.h"

#include <gtest/gtest.h>

#include <vector>

#include "qsc/coloring/q_error.h"
#include "qsc/coloring/stable.h"
#include "qsc/graph/datasets.h"
#include "qsc/graph/generators.h"
#include "qsc/util/random.h"

namespace qsc {
namespace {

TEST(RothkoTest, RespectsMaxColors) {
  Rng rng(1);
  const Graph g = ErdosRenyiGnm(100, 400, rng);
  RothkoOptions options;
  options.max_colors = 10;
  const Partition p = RothkoColoring(g, options);
  EXPECT_EQ(p.num_colors(), 10);
}

TEST(RothkoTest, StopsAtStableColoring) {
  // With unlimited colors and zero tolerance, the refinement must reach a
  // coloring with q-error 0 (a stable coloring).
  Rng rng(2);
  const Graph g = ErdosRenyiGnm(30, 80, rng);
  RothkoOptions options;
  options.max_colors = 1000;
  const Partition p = RothkoColoring(g, options);
  EXPECT_DOUBLE_EQ(ComputeQError(g, p).max_q, 0.0);
}

TEST(RothkoTest, QToleranceStopsEarly) {
  Rng rng(3);
  const Graph g = BarabasiAlbert(200, 3, rng);
  RothkoOptions options;
  options.max_colors = 1000;
  options.q_tolerance = 4.0;
  const Partition p = RothkoColoring(g, options);
  const QErrorStats stats = ComputeQError(g, p);
  EXPECT_LE(stats.max_q, 4.0);
  // It should stop well short of refining everything.
  EXPECT_LT(p.num_colors(), 200);
}

TEST(RothkoTest, ErrorDecreasesWithMoreColors) {
  Rng rng(4);
  const Graph g = BarabasiAlbert(300, 3, rng);
  double prev = 1e18;
  for (ColorId k : {2, 8, 32, 128}) {
    RothkoOptions options;
    options.max_colors = k;
    const Partition p = RothkoColoring(g, options);
    const double q = ComputeQError(g, p).max_q;
    EXPECT_LE(q, prev * 1.5)  // allow mild non-monotonicity
        << "k=" << k;
    prev = q;
  }
}

TEST(RothkoTest, RefinerErrorMatchesComputeQError) {
  Rng rng(5);
  const Graph g = ErdosRenyiGnm(60, 200, rng);
  RothkoOptions options;
  RothkoRefiner refiner(g, Partition::Trivial(60), options);
  for (int i = 0; i < 20; ++i) {
    if (!refiner.Step()) break;
    EXPECT_NEAR(refiner.CurrentMaxError(),
                ComputeQError(g, refiner.partition()).max_q, 1e-9)
        << "step " << i;
  }
}

TEST(RothkoTest, StepReturnsFalseOnDiscretePartition) {
  const Graph g = CompleteGraph(4);
  RothkoOptions options;
  RothkoRefiner refiner(g, Partition::Discrete(4), options);
  EXPECT_FALSE(refiner.Step());
}

TEST(RothkoTest, RegularGraphNeedsNoSplit) {
  const Graph g = CycleGraph(10);
  RothkoOptions options;
  options.max_colors = 100;
  const Partition p = RothkoColoring(g, options);
  EXPECT_EQ(p.num_colors(), 1);
}

TEST(RothkoTest, PreservesPinnedSingletons) {
  Rng rng(6);
  const Graph g = ErdosRenyiGnm(50, 150, rng);
  std::vector<int32_t> labels(50, 2);
  labels[7] = 0;
  labels[13] = 1;
  RothkoOptions options;
  options.max_colors = 12;
  const Partition p =
      RothkoColoring(g, Partition::FromColorIds(labels), options);
  EXPECT_EQ(p.ColorSize(p.ColorOf(7)), 1);
  EXPECT_EQ(p.ColorSize(p.ColorOf(13)), 1);
  EXPECT_NE(p.ColorOf(7), p.ColorOf(13));
}

TEST(RothkoTest, RefinesInitialPartition) {
  Rng rng(7);
  const Graph g = ErdosRenyiGnm(40, 100, rng);
  std::vector<int32_t> labels(40);
  for (int i = 0; i < 40; ++i) labels[i] = i % 2;
  const Partition initial = Partition::FromColorIds(labels);
  RothkoOptions options;
  options.max_colors = 8;
  const Partition p = RothkoColoring(g, initial, options);
  EXPECT_TRUE(p.IsRefinementOf(initial));
}

TEST(RothkoTest, KarateQ3NeedsFewColors) {
  // Paper Figure 1(b): with q = 3, six colors suffice. Rothko is a
  // heuristic; we check it finds a small coloring with q <= 3.
  const Graph g = KarateClub();
  RothkoOptions options;
  options.max_colors = 1000;
  options.q_tolerance = 3.0;
  const Partition p = RothkoColoring(g, options);
  EXPECT_LE(ComputeQError(g, p).max_q, 3.0);
  EXPECT_LE(p.num_colors(), 10);
}

TEST(RothkoTest, HistoryRecordsSplits) {
  Rng rng(8);
  const Graph g = ErdosRenyiGnm(50, 150, rng);
  RothkoOptions options;
  options.max_colors = 6;
  RothkoRefiner refiner(g, Partition::Trivial(50), options);
  refiner.Run();
  const auto& history = refiner.history();
  ASSERT_EQ(history.size(), 5u);  // 1 -> 6 colors = 5 splits
  for (size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(history[i].num_colors, static_cast<ColorId>(i + 2));
    EXPECT_GT(history[i].witness_error, 0.0);
    if (i > 0) {
      EXPECT_GE(history[i].elapsed_seconds, history[i - 1].elapsed_seconds);
    }
  }
}

TEST(RothkoTest, DeterministicAcrossRuns) {
  Rng rng(9);
  const Graph g = BarabasiAlbert(150, 2, rng);
  RothkoOptions options;
  options.max_colors = 20;
  const Partition a = RothkoColoring(g, options);
  const Partition b = RothkoColoring(g, options);
  EXPECT_TRUE(a == b);
}

TEST(RothkoTest, GeometricSplitWorksOnScaleFree) {
  Rng rng(10);
  const Graph g = BarabasiAlbert(400, 3, rng);
  RothkoOptions options;
  options.max_colors = 20;
  options.split_mean = RothkoOptions::SplitMean::kGeometric;
  const Partition p = RothkoColoring(g, options);
  EXPECT_EQ(p.num_colors(), 20);
  // Geometric splits should be less unbalanced: the largest color should
  // not swallow almost everything.
  EXPECT_LT(p.ColorSizes()[0], 400);
}

TEST(RothkoTest, NegativeWeightsHandled) {
  const Graph g = Graph::FromEdges(
      6,
      {{0, 3, -5.0}, {1, 3, 2.0}, {2, 3, 2.0}, {0, 4, 1.0}, {1, 4, 1.0},
       {2, 5, 1.0}},
      false);
  RothkoOptions options;
  options.max_colors = 100;
  const Partition p = RothkoColoring(g, options);
  EXPECT_DOUBLE_EQ(ComputeQError(g, p).max_q, 0.0);
}

TEST(RothkoTest, WeightedWitnessAlphaBeta) {
  // alpha=beta=1 weights big color pairs; the run must still terminate
  // with the requested number of colors and valid telemetry.
  Rng rng(11);
  const Graph g = BarabasiAlbert(300, 3, rng);
  RothkoOptions options;
  options.max_colors = 15;
  options.alpha = 1.0;
  options.beta = 1.0;
  const Partition p = RothkoColoring(g, options);
  EXPECT_EQ(p.num_colors(), 15);
}

TEST(RothkoTest, DirectedGraphBothDirections) {
  // In-direction witness required: sources 0,1 send identical totals but
  // targets receive different amounts.
  const Graph g = Graph::FromEdges(
      4, {{0, 2, 1.0}, {1, 2, 1.0}}, false);
  std::vector<int32_t> labels{0, 0, 1, 1};
  RothkoOptions options;
  options.max_colors = 10;
  const Partition p =
      RothkoColoring(g, Partition::FromColorIds(labels), options);
  // Nodes 2 (in-weight 2) and 3 (in-weight 0) must separate.
  EXPECT_NE(p.ColorOf(2), p.ColorOf(3));
  EXPECT_DOUBLE_EQ(ComputeQError(g, p).max_q, 0.0);
}

// Property sweep: on every generated graph and budget, the refinement (a)
// never exceeds the budget, (b) reports its own q-error exactly, (c) only
// splits (refines) the trivial partition.
class RothkoPropertyTest
    : public testing::TestWithParam<std::tuple<int, ColorId>> {};

TEST_P(RothkoPropertyTest, InvariantsHold) {
  const auto [seed, max_colors] = GetParam();
  Rng rng(seed);
  const Graph g =
      seed % 2 == 0 ? BarabasiAlbert(150, 2, rng) : ErdosRenyiGnm(150, 500, rng);
  RothkoOptions options;
  options.max_colors = max_colors;
  RothkoRefiner refiner(g, Partition::Trivial(150), options);
  refiner.Run();
  const Partition& p = refiner.partition();
  EXPECT_LE(p.num_colors(), max_colors);
  EXPECT_NEAR(refiner.CurrentMaxError(), ComputeQError(g, p).max_q, 1e-9);
  // Colors partition the nodes.
  int64_t total = 0;
  for (ColorId c = 0; c < p.num_colors(); ++c) total += p.ColorSize(c);
  EXPECT_EQ(total, 150);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RothkoPropertyTest,
    testing::Combine(testing::Values(1, 2, 3, 4, 5),
                     testing::Values(ColorId{4}, ColorId{16}, ColorId{64})));

}  // namespace
}  // namespace qsc
