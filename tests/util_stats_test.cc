#include "qsc/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "qsc/util/random.h"

namespace qsc {
namespace {

TEST(MeanTest, Basic) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({-1, 1}), 0.0);
}

TEST(GeometricMeanTest, Basic) {
  EXPECT_DOUBLE_EQ(GeometricMean({4, 9}), 6.0);
  EXPECT_DOUBLE_EQ(GeometricMean({5}), 5.0);
  EXPECT_DOUBLE_EQ(GeometricMean({}), 0.0);
}

TEST(GeometricMeanTest, NonPositiveDies) {
  EXPECT_DEATH(GeometricMean({1.0, 0.0}), "QSC_CHECK");
}

TEST(MedianTest, OddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4, 1, 2, 3}), 2.5);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(MinMaxTest, Basic) {
  EXPECT_DOUBLE_EQ(Min({3, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(Max({3, 1, 2}), 3.0);
}

TEST(StdDevTest, Basic) {
  EXPECT_DOUBLE_EQ(StdDev({2, 4, 4, 4, 5, 5, 7, 9}),
                   std::sqrt(32.0 / 7.0));
  EXPECT_DOUBLE_EQ(StdDev({5}), 0.0);
}

TEST(FractionalRanksTest, NoTies) {
  const auto r = FractionalRanks({30, 10, 20});
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(FractionalRanksTest, TiesGetAverageRank) {
  const auto r = FractionalRanks({10, 20, 10, 30});
  EXPECT_DOUBLE_EQ(r[0], 1.5);
  EXPECT_DOUBLE_EQ(r[2], 1.5);
  EXPECT_DOUBLE_EQ(r[1], 3.0);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(SpearmanTest, PerfectAgreement) {
  EXPECT_NEAR(SpearmanCorrelation({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0,
              1e-12);
}

TEST(SpearmanTest, PerfectReversal) {
  EXPECT_NEAR(SpearmanCorrelation({1, 2, 3, 4}, {40, 30, 20, 10}), -1.0,
              1e-12);
}

TEST(SpearmanTest, MonotoneTransformInvariance) {
  Rng rng(5);
  std::vector<double> x, y;
  for (int i = 0; i < 200; ++i) {
    const double v = rng.UniformDouble(0.0, 10.0);
    x.push_back(v);
    y.push_back(std::exp(v));  // monotone transform preserves ranks
  }
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(SpearmanTest, IndependentSeriesNearZero) {
  Rng rng(6);
  std::vector<double> x, y;
  for (int i = 0; i < 5000; ++i) {
    x.push_back(rng.UniformDouble());
    y.push_back(rng.UniformDouble());
  }
  EXPECT_NEAR(SpearmanCorrelation(x, y), 0.0, 0.05);
}

TEST(SpearmanTest, ConstantSeriesIsZero) {
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(PearsonTest, LinearRelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {-2, -4, -6}), -1.0, 1e-12);
}

TEST(RelativeErrorTest, IdealScoreIsOne) {
  EXPECT_DOUBLE_EQ(RelativeError(5.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(RelativeError(0.0, 0.0), 1.0);
}

TEST(RelativeErrorTest, SymmetricRatio) {
  EXPECT_DOUBLE_EQ(RelativeError(10.0, 5.0), 2.0);
  EXPECT_DOUBLE_EQ(RelativeError(5.0, 10.0), 2.0);
}

TEST(RelativeErrorTest, SignMismatchIsInfinite) {
  EXPECT_TRUE(std::isinf(RelativeError(1.0, -1.0)));
  EXPECT_TRUE(std::isinf(RelativeError(0.0, 3.0)));
}

TEST(RelativeErrorTest, BothNegative) {
  EXPECT_DOUBLE_EQ(RelativeError(-10.0, -5.0), 2.0);
}

}  // namespace
}  // namespace qsc
