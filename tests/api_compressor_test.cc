// qsc::Compressor: boundary validation (every rejection the api_redesign
// issue lists), equivalence of session queries with the legacy one-shot
// entry points, batch-vs-loop identity, and cache/telemetry semantics.

#include "qsc/api/compressor.h"

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "qsc/centrality/color_pivot.h"
#include "qsc/coloring/backend.h"
#include "qsc/dynamic/edit_stream.h"
#include "qsc/coloring/rothko.h"
#include "qsc/flow/approx_flow.h"
#include "qsc/graph/generators.h"
#include "qsc/lp/generators.h"
#include "qsc/lp/reduce.h"
#include "qsc/lp/simplex.h"
#include "qsc/util/random.h"

namespace qsc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

FlowInstance TestInstance(uint64_t seed = 1) {
  Rng rng(seed);
  return GridFlowNetwork(10, 6, 10, 20, rng);
}

Graph TestGraph(uint64_t seed = 11) {
  Rng rng(seed);
  return BarabasiAlbert(300, 3, rng);
}

// --- option validation ----------------------------------------------------

TEST(CompressorValidationTest, RejectsZeroMaxColors) {
  Compressor session(TestGraph());
  QueryOptions query;
  query.max_colors = 0;
  const auto result = session.Coloring(query);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("max_colors"), std::string::npos);
}

TEST(CompressorValidationTest, RejectsNegativeMaxColors) {
  Compressor session(TestGraph());
  QueryOptions query;
  query.max_colors = -5;
  EXPECT_EQ(session.Centrality(query).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CompressorValidationTest, RejectsNegativeQTolerance) {
  Compressor session(TestGraph());
  QueryOptions query;
  query.q_tolerance = -0.5;
  const auto result = session.Coloring(query);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("q_tolerance"), std::string::npos);
}

TEST(CompressorValidationTest, RejectsNonFiniteAlphaBeta) {
  Compressor session(TestGraph());
  QueryOptions query;
  query.alpha = kNaN;
  EXPECT_EQ(session.Coloring(query).status().code(),
            StatusCode::kInvalidArgument);
  query.alpha.reset();
  query.beta = kInf;
  EXPECT_EQ(session.Coloring(query).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CompressorValidationTest, RejectsOutOfRangeTerminals) {
  FlowInstance instance = TestInstance();
  const NodeId n = instance.graph.num_nodes();
  Compressor session(std::move(instance.graph));
  EXPECT_EQ(session.MaxFlow(-1, instance.sink).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.MaxFlow(n, instance.sink).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.MaxFlow(instance.source, n + 7).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      session.MaxFlow(instance.source, instance.source).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(CompressorValidationTest, RejectsOutOfRangePins) {
  Compressor session(TestGraph());
  QueryOptions query;
  query.pinned = {0, session.graph().num_nodes()};
  EXPECT_EQ(session.Coloring(query).status().code(),
            StatusCode::kInvalidArgument);
  query.pinned = {3, 3};
  const auto dup = session.Coloring(query);
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().message().find("duplicate"), std::string::npos);
}

TEST(CompressorValidationTest, RejectsUndirectedMaxFlow) {
  Compressor session(TestGraph());  // Barabasi-Albert is undirected
  const auto result = session.MaxFlow(0, 1);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CompressorValidationTest, RejectsExplicitPinsInMaxFlow) {
  FlowInstance instance = TestInstance();
  Compressor session(std::move(instance.graph));
  QueryOptions query;
  query.pinned = {0};
  EXPECT_EQ(
      session.MaxFlow(instance.source, instance.sink, query).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(CompressorValidationTest, RejectsBadPivotsPerColor) {
  Compressor session(TestGraph());
  QueryOptions query;
  query.pivots_per_color = 0;
  EXPECT_EQ(session.Centrality(query).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CompressorValidationTest, RejectsLpBudgetBelowFour) {
  Compressor session;
  QueryOptions query;
  query.max_colors = 3;
  EXPECT_EQ(session.SolveLp(Figure3Lp(), query).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CompressorValidationTest, RejectsMalformedLp) {
  Compressor session;
  LpProblem lp;
  lp.num_rows = 1;
  lp.num_cols = 1;
  lp.entries = {{0, 5, 1.0}};  // column out of range
  lp.b = {1.0};
  lp.c = {1.0};
  EXPECT_FALSE(session.SolveLp(lp).ok());
}

TEST(CompressorValidationTest, GraphQueriesNeedAGraph) {
  Compressor session;  // LP-only
  EXPECT_FALSE(session.has_graph());
  EXPECT_EQ(session.Coloring().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.MaxFlow(0, 1).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.Centrality().status().code(),
            StatusCode::kFailedPrecondition);
  // ... but LP queries work.
  EXPECT_TRUE(session.SolveLp(Figure3Lp()).ok());
}

TEST(CompressorValidationTest, BatchValidatesBeforeServing) {
  FlowInstance instance = TestInstance();
  Compressor session(std::move(instance.graph));
  const std::vector<std::pair<NodeId, NodeId>> pairs = {
      {instance.source, instance.sink}, {instance.source, -3}};
  EXPECT_EQ(session.MaxFlowBatch(pairs).status().code(),
            StatusCode::kInvalidArgument);
  // The valid first pair must not have been served.
  EXPECT_EQ(session.stats().coloring.lookups, 0);
}

// --- equivalence with the legacy one-shot entry points --------------------

TEST(CompressorTest, MaxFlowMatchesLegacyEntryPoint) {
  FlowInstance instance = TestInstance(3);
  FlowApproxOptions legacy_options;
  legacy_options.rothko.max_colors = 12;
  legacy_options.compute_lower_bound = true;
  const FlowApproxResult legacy = ApproximateMaxFlow(
      instance.graph, instance.source, instance.sink, legacy_options);

  Compressor session(std::move(instance.graph));
  QueryOptions query;
  query.max_colors = 12;
  query.compute_lower_bound = true;
  const auto result = session.MaxFlow(instance.source, instance.sink, query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->upper_bound, legacy.upper_bound);
  EXPECT_EQ(result->lower_bound, legacy.lower_bound);
  EXPECT_EQ(result->num_colors, legacy.num_colors);
  EXPECT_TRUE(*result->coloring == legacy.coloring);
}

TEST(CompressorTest, CentralityMatchesLegacyEntryPoint) {
  Graph g = TestGraph(29);
  ColorPivotOptions legacy_options;
  legacy_options.rothko.max_colors = 24;
  legacy_options.seed = 99;
  const ApproxBetweennessResult legacy =
      ApproximateBetweenness(g, legacy_options);

  Compressor session(std::move(g));
  QueryOptions query;
  query.max_colors = 24;
  query.seed = 99;
  const auto result = session.Centrality(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_colors, legacy.num_colors);
  EXPECT_EQ(result->scores, legacy.scores);  // bitwise
  EXPECT_TRUE(*result->coloring == legacy.coloring);
}

TEST(CompressorTest, SolveLpMatchesLegacyReduceAndSolve) {
  const LpProblem lp = MakeQapLikeLp(6, 3);
  LpReduceOptions legacy_options;
  legacy_options.max_colors = 16;
  const ReducedLp legacy = ReduceLp(lp, legacy_options);
  const LpResult legacy_solve = SolveSimplex(legacy.lp);

  Compressor session;
  QueryOptions query;
  query.max_colors = 16;
  const auto result = session.SolveLp(lp, query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reduced.lp.num_rows, legacy.lp.num_rows);
  EXPECT_EQ(result->reduced.lp.num_cols, legacy.lp.num_cols);
  EXPECT_EQ(result->reduced.row_color, legacy.row_color);
  EXPECT_EQ(result->reduced.col_color, legacy.col_color);
  EXPECT_EQ(result->solution.objective, legacy_solve.objective);
  if (result->solution.status == LpStatus::kOptimal) {
    EXPECT_EQ(result->lifted_x, LiftSolution(legacy, legacy_solve.x));
  }
}

TEST(CompressorTest, ColoringMatchesRothkoColoring) {
  Graph g = TestGraph(41);
  RothkoOptions rothko;
  rothko.max_colors = 20;
  const Partition fresh = RothkoColoring(g, rothko);

  Compressor session(std::move(g));
  QueryOptions query;
  query.max_colors = 20;
  const auto result = session.Coloring(query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(*result->coloring == fresh);
}

// --- cache semantics and telemetry ----------------------------------------

TEST(CompressorTest, RepeatedQueriesShareOneColoring) {
  FlowInstance instance = TestInstance(5);
  Compressor session(std::move(instance.graph));
  QueryOptions query;
  query.max_colors = 10;

  const auto first = session.MaxFlow(instance.source, instance.sink, query);
  const auto second = session.MaxFlow(instance.source, instance.sink, query);
  const auto third = session.MaxFlow(instance.source, instance.sink, query);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(third.ok());

  EXPECT_FALSE(first->telemetry.coloring_cache_hit);
  EXPECT_TRUE(second->telemetry.coloring_cache_hit);
  EXPECT_TRUE(third->telemetry.coloring_cache_hit);
  EXPECT_EQ(second->telemetry.coloring_splits, 0);
  // The snapshot is shared, not copied per query.
  EXPECT_EQ(first->coloring.get(), second->coloring.get());
  EXPECT_EQ(first->coloring.get(), third->coloring.get());
  EXPECT_EQ(first->upper_bound, third->upper_bound);

  const CompressorStats& stats = session.stats();
  EXPECT_EQ(stats.coloring.lookups, 3);
  EXPECT_EQ(stats.coloring.misses, 1);
  EXPECT_EQ(stats.coloring.hits, 2);
}

TEST(CompressorTest, DistinctSpecsGetDistinctEntries) {
  Graph g = TestGraph(7);
  Compressor session(std::move(g));
  QueryOptions a;
  a.max_colors = 8;
  QueryOptions b = a;
  b.alpha = 1.0;  // different witness weighting -> different spec
  ASSERT_TRUE(session.Coloring(a).ok());
  ASSERT_TRUE(session.Coloring(b).ok());
  EXPECT_EQ(session.stats().coloring.misses, 2);
  EXPECT_EQ(session.stats().coloring.hits, 0);
}

TEST(CompressorTest, DownBudgetQueryMatchesFreshRunAndIsMemoized) {
  Graph g = TestGraph(13);
  RothkoOptions rothko;
  rothko.max_colors = 12;
  const Partition fresh12 = RothkoColoring(g, rothko);

  Compressor session(std::move(g));
  QueryOptions query;
  query.max_colors = 48;
  ASSERT_TRUE(session.Coloring(query).ok());

  query.max_colors = 12;  // below the cached refiner's 48 colors
  const auto down = session.Coloring(query);
  ASSERT_TRUE(down.ok());
  EXPECT_TRUE(*down->coloring == fresh12);
  EXPECT_FALSE(down->telemetry.coloring_cache_hit);
  EXPECT_EQ(session.stats().coloring.recolorings, 1);

  // Served again: memoized snapshot, no recompute.
  const auto again = session.Coloring(query);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->telemetry.coloring_cache_hit);
  EXPECT_EQ(again->coloring.get(), down->coloring.get());
  EXPECT_EQ(session.stats().coloring.recolorings, 1);
}

TEST(CompressorTest, MaxFlowBatchMatchesPerQueryLoop) {
  Rng rng(21);
  FlowInstance instance = GridFlowNetwork(12, 8, 10, 30, rng);
  const NodeId n = instance.graph.num_nodes();
  const std::vector<std::pair<NodeId, NodeId>> pairs = {
      {instance.source, instance.sink},
      {instance.source, instance.sink},  // repeat: shares the coloring
      {0, n - 1},
      {instance.source, instance.sink},
  };
  QueryOptions query;
  query.max_colors = 14;

  Compressor loop_session(Graph{instance.graph});
  std::vector<FlowQueryResult> loop_results;
  for (const auto& [s, t] : pairs) {
    auto r = loop_session.MaxFlow(s, t, query);
    ASSERT_TRUE(r.ok());
    loop_results.push_back(std::move(r).value());
  }

  Compressor batch_session(std::move(instance.graph));
  const auto batch = batch_session.MaxFlowBatch(pairs, query);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ((*batch)[i].upper_bound, loop_results[i].upper_bound) << i;
    EXPECT_EQ((*batch)[i].num_colors, loop_results[i].num_colors) << i;
    EXPECT_TRUE(*(*batch)[i].coloring == *loop_results[i].coloring) << i;
  }
  // 4 queries over 2 distinct (s, t) pin sets: 2 misses, 2 hits.
  EXPECT_EQ(batch_session.stats().coloring.lookups, 4);
  EXPECT_EQ(batch_session.stats().coloring.misses, 2);
  EXPECT_EQ(batch_session.stats().coloring.hits, 2);
}

TEST(CompressorTest, SolveLpReusesMatrixColoringAcrossBudgets) {
  const LpProblem lp = MakeQapLikeLp(6, 3);
  Compressor session;
  QueryOptions query;
  query.max_colors = 8;
  ASSERT_TRUE(session.SolveLp(lp, query).ok());
  query.max_colors = 24;
  const auto finer = session.SolveLp(lp, query);
  ASSERT_TRUE(finer.ok());
  EXPECT_TRUE(finer->telemetry.coloring_cache_hit);
  EXPECT_EQ(session.stats().lp_lookups, 2);
  EXPECT_EQ(session.stats().lp_misses, 1);
  EXPECT_EQ(session.stats().lp_hits, 1);

  // Resumed reduction matches a cold reduction at the finer budget.
  LpReduceOptions cold;
  cold.max_colors = 24;
  const ReducedLp fresh = ReduceLp(lp, cold);
  EXPECT_EQ(finer->reduced.row_color, fresh.row_color);
  EXPECT_EQ(finer->reduced.col_color, fresh.col_color);
  const LpResult fresh_solve = SolveSimplex(fresh.lp);
  EXPECT_EQ(finer->solution.objective, fresh_solve.objective);
}

TEST(CompressorTest, BudgetBelowPinCountServesInitialPartition) {
  // Run() cannot go below the initial color count (terminals + rest), and
  // neither can the session — without taking the down-budget recompute
  // path or misreporting stats.
  FlowInstance instance = TestInstance(17);
  FlowApproxOptions cold;
  cold.rothko.max_colors = 1;
  const FlowApproxResult legacy = ApproximateMaxFlow(
      instance.graph, instance.source, instance.sink, cold);
  EXPECT_EQ(legacy.num_colors, 3);

  Compressor session(std::move(instance.graph));
  QueryOptions query;
  query.max_colors = 1;
  const auto result = session.MaxFlow(instance.source, instance.sink, query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_colors, 3);
  EXPECT_EQ(result->upper_bound, legacy.upper_bound);
  EXPECT_EQ(session.stats().coloring.recolorings, 0);
}

TEST(CompressorTest, SolveLpDownBudgetMatchesColdAndIsMemoized) {
  const LpProblem lp = MakeQapLikeLp(6, 3);
  Compressor session;
  QueryOptions query;
  query.max_colors = 40;
  ASSERT_TRUE(session.SolveLp(lp, query).ok());

  query.max_colors = 8;  // below the cached matrix coloring's colors
  const auto down = session.SolveLp(lp, query);
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(session.stats().lp_recolorings, 1);
  LpReduceOptions cold;
  cold.max_colors = 8;
  const ReducedLp fresh = ReduceLp(lp, cold);
  EXPECT_EQ(down->reduced.row_color, fresh.row_color);
  EXPECT_EQ(down->reduced.col_color, fresh.col_color);
  EXPECT_EQ(down->solution.objective, SolveSimplex(fresh.lp).objective);

  // Second down-budget query: served from the memo, no recompute.
  const auto again = session.SolveLp(lp, query);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->telemetry.coloring_cache_hit);
  EXPECT_EQ(session.stats().lp_recolorings, 1);
  EXPECT_EQ(again->solution.objective, down->solution.objective);
}

TEST(CompressorTest, SolveLpDistinguishesDifferentLpsByContent) {
  Compressor session;
  const LpProblem a = MakeQapLikeLp(6, 3);
  LpProblem b = a;
  b.c[0] += 1.0;  // different problem, same shape
  ASSERT_TRUE(session.SolveLp(a).ok());
  ASSERT_TRUE(session.SolveLp(b).ok());
  EXPECT_EQ(session.stats().lp_misses, 2);
  EXPECT_EQ(session.stats().lp_hits, 0);
}

TEST(CompressorTest, MovedSessionKeepsServing) {
  FlowInstance instance = TestInstance(9);
  Compressor session(std::move(instance.graph));
  QueryOptions query;
  query.max_colors = 8;
  const auto before = session.MaxFlow(instance.source, instance.sink, query);
  ASSERT_TRUE(before.ok());

  Compressor moved = std::move(session);
  const auto after = moved.MaxFlow(instance.source, instance.sink, query);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->telemetry.coloring_cache_hit);
  EXPECT_EQ(after->upper_bound, before->upper_bound);
}

// --- coloring backends at the boundary ------------------------------------

TEST(CompressorValidationTest, RejectsUnknownAndMalformedBackends) {
  // Malformed names (cannot canonicalize) are InvalidArgument; well-formed
  // but unregistered names are NotFound listing the registered set. The
  // mapping is uniform across all four query kinds.
  struct Case {
    std::string backend;
    StatusCode code;
  };
  const Case cases[] = {
      {"no-such-backend", StatusCode::kNotFound},
      {"rothko2", StatusCode::kNotFound},
      {"bogus!", StatusCode::kInvalidArgument},
      {"-rothko", StatusCode::kInvalidArgument},
      {"two words", StatusCode::kInvalidArgument},
      {std::string(65, 'a'), StatusCode::kInvalidArgument},
  };

  FlowInstance instance = TestInstance(3);
  Compressor flow_session(std::move(instance.graph));
  Compressor graph_session(TestGraph(19));
  const LpProblem lp = MakeQapLikeLp(6, 3);
  for (const Case& c : cases) {
    QueryOptions query;
    query.backend = c.backend;
    EXPECT_EQ(graph_session.Coloring(query).status().code(), c.code)
        << c.backend;
    EXPECT_EQ(graph_session.Centrality(query).status().code(), c.code)
        << c.backend;
    EXPECT_EQ(flow_session.MaxFlow(instance.source, instance.sink, query)
                  .status()
                  .code(),
              c.code)
        << c.backend;
    EXPECT_EQ(flow_session.SolveLp(lp, query).status().code(), c.code)
        << c.backend;
  }
  // Nothing reached the cache.
  EXPECT_EQ(graph_session.stats().coloring.lookups, 0);
  EXPECT_EQ(flow_session.stats().lp_lookups, 0);
}

TEST(CompressorTest, BackendSpellingsCanonicalizeIntoOneCacheEntry) {
  // "", "rothko", and "  ROTHKO  " are one spec: one miss, then hits
  // serving the same shared snapshot — the hash-compatibility guarantee
  // that pre-registry specs keep their cache identity.
  Compressor session(TestGraph(23));
  QueryOptions query;
  query.max_colors = 10;
  query.backend = "";
  const auto a = session.Coloring(query);
  query.backend = "rothko";
  const auto b = session.Coloring(query);
  query.backend = "  ROTHKO  ";
  const auto c = session.Coloring(query);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a->coloring.get(), b->coloring.get());
  EXPECT_EQ(a->coloring.get(), c->coloring.get());
  EXPECT_EQ(session.stats().coloring.misses, 1);
  EXPECT_EQ(session.stats().coloring.hits, 2);
}

TEST(CompressorTest, DistinctBackendsGetDistinctCacheEntries) {
  Compressor session(TestGraph(29));
  QueryOptions query;
  query.max_colors = 12;
  std::vector<std::shared_ptr<const Partition>> colorings;
  for (const char* backend : {"rothko", "lp-rounding", "bucket"}) {
    query.backend = backend;
    const auto result = session.Coloring(query);
    ASSERT_TRUE(result.ok()) << backend;
    colorings.push_back(result->coloring);
  }
  EXPECT_EQ(session.stats().coloring.misses, 3);
  EXPECT_EQ(session.stats().coloring.hits, 0);

  // Each backend continues its own cached refiner on an up-budget query.
  query.max_colors = 20;
  for (const char* backend : {"rothko", "lp-rounding", "bucket"}) {
    query.backend = backend;
    const auto result = session.Coloring(query);
    ASSERT_TRUE(result.ok()) << backend;
    EXPECT_TRUE(result->telemetry.coloring_cache_hit) << backend;
    EXPECT_GT(result->telemetry.coloring_splits, 0) << backend;
  }
  EXPECT_EQ(session.stats().coloring.misses, 3);
  EXPECT_EQ(session.stats().coloring.hits, 3);
}

TEST(CompressorTest, BackendColoringMatchesDirectBackendRun) {
  // A session query routed by name is bit-identical to driving the
  // registry-created backend directly at the same budget.
  Graph g = TestGraph(31);
  const ColorId budget = 14;
  for (const char* backend_name : {"lp-rounding", "bucket"}) {
    const std::unique_ptr<ColoringBackend> direct =
        ColoringBackendRegistry::Global().Create(
            backend_name, g, Partition::Trivial(g.num_nodes()), {});
    while (direct->partition().num_colors() < budget &&
           direct->Step(budget)) {
    }

    Compressor session(std::shared_ptr<const Graph>(
        std::shared_ptr<const Graph>(), &g));
    QueryOptions query;
    query.max_colors = budget;
    query.backend = backend_name;
    const auto result = session.Coloring(query);
    ASSERT_TRUE(result.ok()) << backend_name;
    ASSERT_EQ(result->coloring->num_colors(),
              direct->partition().num_colors())
        << backend_name;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(result->coloring->ColorOf(v), direct->partition().ColorOf(v))
          << backend_name;
    }
  }
}

TEST(CompressorTest, PerBackendStatsReconcile) {
  // The documented reconciliation invariant: per backend row AND in total,
  // hits + misses + recolorings == lookups; the per-backend columns sum to
  // the totals. Exercises all four attribution sites per backend: miss,
  // continuation hit, served hit, down-budget recoloring.
  Compressor session(TestGraph(37));
  for (const char* backend : {"", "lp-rounding", "bucket"}) {
    QueryOptions query;
    query.backend = backend;
    query.max_colors = 8;
    ASSERT_TRUE(session.Coloring(query).ok());  // miss
    query.max_colors = 16;
    ASSERT_TRUE(session.Coloring(query).ok());  // hit (continuation)
    ASSERT_TRUE(session.Coloring(query).ok());  // hit (served snapshot)
    query.max_colors = 6;
    ASSERT_TRUE(session.Coloring(query).ok());  // down-budget recoloring
  }
  const CacheStats stats = session.stats().coloring;
  ASSERT_EQ(stats.per_backend.size(), 3u);  // "" accounted under "rothko"
  ASSERT_EQ(stats.per_backend.count("rothko"), 1u);
  int64_t lookups = 0, hits = 0, misses = 0, recolorings = 0, splits = 0;
  for (const auto& [name, row] : stats.per_backend) {
    EXPECT_EQ(row.hits + row.misses + row.recolorings, row.lookups) << name;
    EXPECT_EQ(row.lookups, 4) << name;
    EXPECT_EQ(row.misses, 1) << name;
    EXPECT_EQ(row.hits, 2) << name;
    EXPECT_EQ(row.recolorings, 1) << name;
    EXPECT_GT(row.refine_splits, 0) << name;
    lookups += row.lookups;
    hits += row.hits;
    misses += row.misses;
    recolorings += row.recolorings;
    splits += row.refine_splits;
  }
  EXPECT_EQ(lookups, stats.lookups);
  EXPECT_EQ(hits, stats.hits);
  EXPECT_EQ(misses, stats.misses);
  EXPECT_EQ(recolorings, stats.recolorings);
  EXPECT_EQ(splits, stats.refine_splits);
  EXPECT_EQ(stats.hits + stats.misses + stats.recolorings, stats.lookups);
}

TEST(CompressorTest, SolveLpRoutesBackendToTheMatrixColoring) {
  // Distinct backends are distinct LP cache sessions; the same backend
  // re-queried is a hit.
  Compressor session;
  const LpProblem lp = MakeQapLikeLp(6, 3);
  QueryOptions query;
  query.max_colors = 12;
  query.backend = "bucket";
  const auto bucket = session.SolveLp(lp, query);
  ASSERT_TRUE(bucket.ok());
  ASSERT_TRUE(session.SolveLp(lp, query).ok());
  query.backend = "rothko";
  const auto rothko = session.SolveLp(lp, query);
  ASSERT_TRUE(rothko.ok());
  EXPECT_EQ(session.stats().lp_misses, 2);
  EXPECT_EQ(session.stats().lp_hits, 1);
  // Both reductions lift to a well-formed solution of the original LP.
  EXPECT_EQ(bucket->lifted_x.size(), static_cast<size_t>(lp.num_cols));
  EXPECT_EQ(rothko->lifted_x.size(), static_cast<size_t>(lp.num_cols));
}

// --- dynamic edits (ApplyEdits) -------------------------------------------

TEST(CompressorValidationTest, ApplyEditsRejectsBadBatchesUpFront) {
  Compressor session(TestGraph());

  const auto empty = session.ApplyEdits({});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(empty.status().message().find("empty"), std::string::npos);

  EditApplyOptions bad_repair;
  bad_repair.max_repair_splits = -1;
  const std::vector<dynamic::EditOp> one_edit = {
      {dynamic::EditKind::kUpdateWeight, 0, 1, 2.0}};
  EXPECT_EQ(session.ApplyEdits(one_edit, bad_repair).status().code(),
            StatusCode::kInvalidArgument);

  // Edits mutate the session graph; an LP-only session has none.
  Compressor lp_only;
  EXPECT_EQ(lp_only.ApplyEdits(one_edit).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CompressorTest, ApplyEditsIsAllOrNothingOnABadEdit) {
  const Graph g = TestGraph();
  NodeId u = 0, v = 0;
  for (NodeId candidate = 1; candidate < g.num_nodes(); ++candidate) {
    if (!g.HasArc(0, candidate)) {
      u = 0;
      v = candidate;
      break;
    }
  }
  ASSERT_NE(u, v);

  Compressor session(
      std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(), &g));
  // A valid insert followed by a delete of an absent self-loop: the batch
  // fails as a unit and the session graph and version are untouched.
  const std::vector<dynamic::EditOp> batch = {
      {dynamic::EditKind::kInsertEdge, u, v, 1.0},
      {dynamic::EditKind::kDeleteEdge, 5, 5, 0.0},
  };
  const auto applied = session.ApplyEdits(batch);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(session.graph_version(), 0);
  EXPECT_FALSE(session.graph().HasArc(u, v));
  EXPECT_TRUE(session.graph() == g);
}

TEST(CompressorTest, ApplyEditsBumpsVersionAndStampsTelemetry) {
  const Graph g = TestGraph();
  Compressor session(
      std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(), &g));
  EXPECT_EQ(session.graph_version(), 0);

  QueryOptions query;
  query.max_colors = 24;
  {
    const auto before = session.Coloring(query);
    QSC_CHECK_OK(before);
    EXPECT_EQ(before->telemetry.graph_version, 0);
  }

  Graph expected = g;
  for (int batch = 0; batch < 2; ++batch) {
    const StatusOr<std::vector<dynamic::EditOp>> edits = dynamic::GenerateEdits(
        expected, dynamic::EditKind::kInsertEdge, 7,
        static_cast<uint64_t>(batch) + 3);
    QSC_CHECK_OK(edits);
    const auto applied = session.ApplyEdits(*edits);
    QSC_CHECK_OK(applied);
    EXPECT_EQ(applied->edits_applied, 7);
    EXPECT_EQ(applied->graph_version, batch + 1);
    EXPECT_GE(applied->seconds, 0.0);
    StatusOr<Graph> next = dynamic::ApplyEditBatch(expected, *edits);
    QSC_CHECK_OK(next);
    expected = std::move(next).value();
  }
  EXPECT_EQ(session.graph_version(), 2);
  EXPECT_TRUE(session.graph() == expected);

  // Post-edit queries are stamped with the new version and serve exactly
  // what a fresh session on the mutated graph serves (the zero-tolerance
  // spec was reset to scratch by the edits).
  const auto after = session.Coloring(query);
  QSC_CHECK_OK(after);
  EXPECT_EQ(after->telemetry.graph_version, 2);
  Compressor fresh(std::shared_ptr<const Graph>(
      std::shared_ptr<const Graph>(), &expected));
  const auto want = fresh.Coloring(query);
  QSC_CHECK_OK(want);
  EXPECT_EQ(after->max_q, want->max_q);
  EXPECT_TRUE(*after->coloring == *want->coloring);
}

TEST(CompressorTest, ApplyEditsRepairsToleranceBoundedSpecsOnly) {
  Compressor session(TestGraph());

  QueryOptions strict;  // q_tolerance 0: never repairable
  strict.max_colors = 16;
  QueryOptions bounded = strict;
  bounded.q_tolerance = 8.0;
  QSC_CHECK_OK(session.Coloring(strict));
  QSC_CHECK_OK(session.Coloring(bounded));

  const StatusOr<std::vector<dynamic::EditOp>> edits = dynamic::GenerateEdits(
      session.graph(), dynamic::EditKind::kInsertEdge, 10, 41);
  QSC_CHECK_OK(edits);
  const auto applied = session.ApplyEdits(*edits);
  QSC_CHECK_OK(applied);
  EXPECT_EQ(applied->repairs, 1);    // the bounded spec
  EXPECT_EQ(applied->fallbacks, 1);  // the strict spec

  const CacheStats& stats = session.stats().coloring;
  EXPECT_EQ(stats.edit_batches, 1);
  EXPECT_EQ(stats.edits_applied, 10);
  EXPECT_EQ(stats.repairs, 1);
  EXPECT_EQ(stats.fallbacks, 1);
}

}  // namespace
}  // namespace qsc
