// GraphView (qsc/graph/graph_view.h): the zero-copy serving substrate.
// Covers surface equality against the owning Graph, bit-identity of a
// mapped view against MappedGraph::Materialize() (the invariant the
// serving/mmap-* bench scenarios gate), and the lifetime contract — a
// view outliving its Materialize() call, and the rejection table for
// views over moved-from MappedGraphs. The ASan leg runs this binary, so
// every read through a view here is a use-after-free probe.

#include "qsc/graph/graph_view.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "qsc/graph/generators.h"
#include "qsc/graph/graph.h"
#include "qsc/graph/io.h"
#include "qsc/util/random.h"

namespace qsc {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

Graph DirectedBa(NodeId n, uint64_t seed) {
  Rng rng(seed);
  const Graph ba = BarabasiAlbert(n, 3, rng);
  return Graph::FromArcs(ba.num_nodes(), ba.Arcs(), /*undirected=*/false);
}

Graph UndirectedBa(NodeId n, uint64_t seed) {
  Rng rng(seed);
  return BarabasiAlbert(n, 3, rng);
}

void ExpectSameArcs(const std::vector<EdgeTriple>& got,
                    const std::vector<EdgeTriple>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].src, want[i].src);
    EXPECT_EQ(got[i].dst, want[i].dst);
    EXPECT_EQ(got[i].weight, want[i].weight);
  }
}

// Every accessor of `view` must agree bitwise with `g` — the view
// surface is a drop-in replacement for the owning graph's read surface.
void ExpectSameSurface(const Graph& g, const GraphView& view) {
  ASSERT_EQ(view.num_nodes(), g.num_nodes());
  EXPECT_EQ(view.num_arcs(), g.num_arcs());
  EXPECT_EQ(view.num_edges(), g.num_edges());
  EXPECT_EQ(view.undirected(), g.undirected());
  EXPECT_EQ(view.TotalWeight(), g.TotalWeight());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(view.OutDegree(u), g.OutDegree(u));
    EXPECT_EQ(view.InDegree(u), g.InDegree(u));
    EXPECT_EQ(view.OutWeight(u), g.OutWeight(u));
    EXPECT_EQ(view.InWeight(u), g.InWeight(u));
    auto vit = view.OutNeighbors(u).begin();
    for (const NeighborEntry e : g.OutNeighbors(u)) {
      EXPECT_EQ((*vit).node, e.node);
      EXPECT_EQ((*vit).weight, e.weight);
      ++vit;
    }
    auto iit = view.InNeighbors(u).begin();
    for (const NeighborEntry e : g.InNeighbors(u)) {
      EXPECT_EQ((*iit).node, e.node);
      EXPECT_EQ((*iit).weight, e.weight);
      ++iit;
    }
  }
  ExpectSameArcs(view.Arcs(), g.Arcs());
}

TEST(GraphViewTest, DefaultConstructedIsEmpty) {
  const GraphView view;
  EXPECT_EQ(view.num_nodes(), 0);
  EXPECT_EQ(view.num_arcs(), 0);
  EXPECT_EQ(view.num_edges(), 0);
  EXPECT_FALSE(view.undirected());
  EXPECT_EQ(view.TotalWeight(), 0.0);
  EXPECT_TRUE(view.Arcs().empty());
}

TEST(GraphViewTest, AliasesOwningDirectedGraph) {
  const Graph g = DirectedBa(200, 7);
  const GraphView view(g);
  ExpectSameSurface(g, view);
  EXPECT_TRUE(view.HasArc(g.Arcs()[0].src, g.Arcs()[0].dst));
  EXPECT_EQ(view.ArcWeight(g.Arcs()[0].src, g.Arcs()[0].dst),
            g.ArcWeight(g.Arcs()[0].src, g.Arcs()[0].dst));
  EXPECT_FALSE(view.HasArc(0, 0));
  EXPECT_EQ(view.ArcWeight(0, 0), 0.0);
}

TEST(GraphViewTest, AliasesOwningUndirectedGraph) {
  const Graph g = UndirectedBa(200, 11);
  ExpectSameSurface(g, GraphView(g));
}

TEST(GraphViewTest, ImplicitConversionFromGraph) {
  const Graph g = DirectedBa(50, 3);
  // Kernels flipped from `const Graph&` to `GraphView` parameters rely on
  // this conversion to keep existing call sites compiling.
  const auto takes_view = [](const GraphView& v) { return v.num_arcs(); };
  EXPECT_EQ(takes_view(g), g.num_arcs());
}

TEST(GraphViewTest, MappedDirectedViewMatchesMaterialize) {
  const Graph g = DirectedBa(300, 19);
  const std::string path = TempPath("view_directed.qscbin");
  ASSERT_TRUE(WriteBinary(g, path).ok());
  StatusOr<MappedGraph> mapped = MapBinary(path);
  ASSERT_TRUE(mapped.ok());
  const GraphView view = GraphView::Of(*mapped);
  // Bit-identity with the materialized Graph: same accumulation order for
  // every derived quantity (weight caches, in-CSR, edge count).
  ExpectSameSurface(mapped->Materialize(), view);
  std::remove(path.c_str());
}

TEST(GraphViewTest, MappedUndirectedViewMatchesMaterialize) {
  const Graph g = UndirectedBa(300, 23);
  const std::string path = TempPath("view_undirected.qscbin");
  ASSERT_TRUE(WriteBinary(g, path).ok());
  StatusOr<MappedGraph> mapped = MapBinary(path);
  ASSERT_TRUE(mapped.ok());
  const GraphView view = GraphView::Of(*mapped);
  ExpectSameSurface(mapped->Materialize(), view);
  std::remove(path.c_str());
}

TEST(GraphViewTest, ViewStaysValidAfterMaterialize) {
  // Materialize() copies out of the mapping; it must not disturb it. A
  // view built before the call reads identically after (ASan would flag
  // any invalidated page).
  const Graph g = DirectedBa(150, 29);
  const std::string path = TempPath("view_after_materialize.qscbin");
  ASSERT_TRUE(WriteBinary(g, path).ok());
  StatusOr<MappedGraph> mapped = MapBinary(path);
  ASSERT_TRUE(mapped.ok());
  const GraphView view = GraphView::Of(*mapped);
  const std::vector<EdgeTriple> before = view.Arcs();
  const Graph materialized = mapped->Materialize();
  ExpectSameArcs(view.Arcs(), before);
  ExpectSameArcs(materialized.Arcs(), before);
  std::remove(path.c_str());
}

TEST(GraphViewTest, ViewCopiesShareDerivedArrays) {
  const Graph g = DirectedBa(100, 31);
  const std::string path = TempPath("view_copies.qscbin");
  ASSERT_TRUE(WriteBinary(g, path).ok());
  StatusOr<MappedGraph> mapped = MapBinary(path);
  ASSERT_TRUE(mapped.ok());
  GraphView original = GraphView::Of(*mapped);
  const GraphView copy = original;  // cheap: pointers + one shared_ptr
  const std::vector<EdgeTriple> arcs = copy.Arcs();
  original = GraphView();  // the copy keeps the derived arrays alive
  ExpectSameArcs(copy.Arcs(), arcs);
  EXPECT_EQ(copy.InDegree(0), mapped->Materialize().InDegree(0));
  std::remove(path.c_str());
}

// The rejection table for moved-from MappedGraphs: every way of reaching
// GraphView::Of with a hollowed-out mapping must trip the contract check
// instead of dereferencing null CSR pointers.
TEST(GraphViewDeathTest, RejectsMoveConstructedFromMapped) {
  const Graph g = DirectedBa(50, 37);
  const std::string path = TempPath("view_moved_from1.qscbin");
  ASSERT_TRUE(WriteBinary(g, path).ok());
  StatusOr<MappedGraph> mapped = MapBinary(path);
  ASSERT_TRUE(mapped.ok());
  const MappedGraph stolen = std::move(*mapped);
  EXPECT_EQ(GraphView::Of(stolen).num_arcs(), g.num_arcs());  // alive: fine
  EXPECT_DEATH(GraphView::Of(*mapped), "QSC_CHECK");
  std::remove(path.c_str());
}

TEST(GraphViewDeathTest, RejectsMoveAssignedFromMapped) {
  const Graph g = DirectedBa(50, 41);
  const std::string path = TempPath("view_moved_from2.qscbin");
  ASSERT_TRUE(WriteBinary(g, path).ok());
  StatusOr<MappedGraph> a = MapBinary(path);
  StatusOr<MappedGraph> b = MapBinary(path);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  *a = std::move(*b);
  EXPECT_EQ(GraphView::Of(*a).num_arcs(), g.num_arcs());
  EXPECT_DEATH(GraphView::Of(*b), "QSC_CHECK");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qsc
