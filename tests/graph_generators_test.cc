#include "qsc/graph/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace qsc {
namespace {

TEST(ErdosRenyiTest, ExactEdgeCount) {
  Rng rng(1);
  const Graph g = ErdosRenyiGnm(50, 200, rng);
  EXPECT_EQ(g.num_nodes(), 50);
  EXPECT_EQ(g.num_edges(), 200);
  EXPECT_TRUE(g.undirected());
}

TEST(ErdosRenyiTest, NoSelfLoops) {
  Rng rng(2);
  const Graph g = ErdosRenyiGnm(20, 100, rng);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_FALSE(g.HasArc(v, v));
  }
}

TEST(ErdosRenyiTest, CompleteGraphEdgeBudget) {
  Rng rng(3);
  const Graph g = ErdosRenyiGnm(10, 45, rng);  // complete K10
  EXPECT_EQ(g.num_edges(), 45);
}

TEST(BarabasiAlbertTest, EdgeCountFormula) {
  Rng rng(4);
  const int32_t m = 3, n = 200;
  const Graph g = BarabasiAlbert(n, m, rng);
  // Seed clique of m+1 nodes plus m edges per additional node.
  const int64_t expected =
      static_cast<int64_t>(m) * (m + 1) / 2 + static_cast<int64_t>(m) * (n - m - 1);
  EXPECT_EQ(g.num_edges(), expected);
}

TEST(BarabasiAlbertTest, HeavyTail) {
  Rng rng(5);
  const Graph g = BarabasiAlbert(2000, 2, rng);
  int64_t max_deg = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_deg = std::max(max_deg, g.OutDegree(v));
  }
  // Preferential attachment should produce hubs far above the mean (~4).
  EXPECT_GT(max_deg, 40);
}

TEST(PowerLawTest, ApproximateEdgeCount) {
  Rng rng(6);
  const Graph g = PowerLawGraph(1000, 5000, 2.5, rng);
  EXPECT_EQ(g.num_nodes(), 1000);
  EXPECT_GT(g.num_edges(), 4000);
  EXPECT_LE(g.num_edges(), 5000);
}

TEST(WeightedHubGraphTest, DirectedIntegerWeights) {
  Rng rng(7);
  const Graph g = WeightedHubGraph(100, 3, 50, rng);
  EXPECT_FALSE(g.undirected());
  for (const EdgeTriple& a : g.Arcs()) {
    EXPECT_GE(a.weight, 1.0);
    EXPECT_LE(a.weight, 50.0);
    EXPECT_DOUBLE_EQ(a.weight, std::floor(a.weight));
  }
}

TEST(BlockBiregularTest, PaperFigure2Shape) {
  Rng rng(8);
  const Graph g = BlockBiregularGraph(100, 10, 216, rng);
  EXPECT_EQ(g.num_nodes(), 1000);
  EXPECT_EQ(g.num_edges(), 21600);
}

TEST(BlockBiregularTest, GroupDegreesUniform) {
  Rng rng(9);
  const int32_t group_size = 5;
  const Graph g = BlockBiregularGraph(10, group_size, 12, rng);
  // All nodes of one group have identical degree (biregular blocks).
  for (int32_t group = 0; group < 10; ++group) {
    const int64_t d0 = g.OutDegree(group * group_size);
    for (int32_t i = 1; i < group_size; ++i) {
      EXPECT_EQ(g.OutDegree(group * group_size + i), d0);
    }
  }
}

TEST(GridFlowNetworkTest, Structure) {
  Rng rng(10);
  const FlowInstance inst = GridFlowNetwork(8, 5, 10, 20, rng);
  EXPECT_EQ(inst.graph.num_nodes(), 8 * 5 + 2);
  EXPECT_EQ(inst.source, 40);
  EXPECT_EQ(inst.sink, 41);
  EXPECT_EQ(inst.graph.OutDegree(inst.source), 5);  // first column
  EXPECT_EQ(inst.graph.InDegree(inst.sink), 5);     // last column
  EXPECT_EQ(inst.graph.OutDegree(inst.sink), 0);
}

TEST(LayeredDiagonalNetworkTest, ShapeAndCapacity) {
  const FlowInstance inst = LayeredDiagonalNetwork(4, 6);
  EXPECT_EQ(inst.graph.num_nodes(), 4 * 6 + 2);
  // Source feeds the full first layer.
  EXPECT_EQ(inst.graph.OutDegree(inst.source), 6);
  // Strict diagonal: interior node forwards to one node, top node to none.
  EXPECT_EQ(inst.graph.OutDegree(0), 1);
  EXPECT_EQ(inst.graph.OutDegree(5), 0);
  // Last layer feeds the sink.
  EXPECT_EQ(inst.graph.InDegree(inst.sink), 6);
}

TEST(SegmentationGridNetworkTest, Structure) {
  Rng rng(11);
  const FlowInstance inst = SegmentationGridNetwork(20, 12, 2, rng);
  EXPECT_EQ(inst.graph.num_nodes(), 20 * 12 + 2);
  // Every pixel has a source arc and a sink arc.
  EXPECT_EQ(inst.graph.OutDegree(inst.source), 20 * 12);
  EXPECT_EQ(inst.graph.InDegree(inst.sink), 20 * 12);
  // Interior pixel: 4 smoothness arcs + sink arc out, 4 + source arc in.
  const NodeId interior = 5 * 20 + 10;
  EXPECT_EQ(inst.graph.OutDegree(interior), 5);
  EXPECT_EQ(inst.graph.InDegree(interior), 5);
}

TEST(SegmentationGridNetworkTest, DataTermsInRange) {
  Rng rng(12);
  const FlowInstance inst = SegmentationGridNetwork(16, 10, 2, rng);
  for (const NeighborEntry& e : inst.graph.OutNeighbors(inst.source)) {
    EXPECT_GE(e.weight, 1.0);
    EXPECT_LE(e.weight, 10.0);
  }
  for (const NeighborEntry& e : inst.graph.InNeighbors(inst.sink)) {
    EXPECT_GE(e.weight, 1.0);
    EXPECT_LE(e.weight, 10.0);
  }
}

TEST(DeterministicGraphsTest, Shapes) {
  EXPECT_EQ(PathGraph(5).num_edges(), 4);
  EXPECT_EQ(CycleGraph(5).num_edges(), 5);
  EXPECT_EQ(StarGraph(6).num_edges(), 6);
  EXPECT_EQ(CompleteGraph(6).num_edges(), 15);
  EXPECT_EQ(CompleteBipartiteGraph(3, 4).num_edges(), 12);
}

TEST(DeterministicGraphsTest, StarDegrees) {
  const Graph g = StarGraph(5);
  EXPECT_EQ(g.OutDegree(0), 5);
  for (NodeId v = 1; v <= 5; ++v) EXPECT_EQ(g.OutDegree(v), 1);
}

TEST(GeneratorsTest, SeedsReproduce) {
  Rng rng1(42), rng2(42);
  const Graph a = BarabasiAlbert(100, 2, rng1);
  const Graph b = BarabasiAlbert(100, 2, rng2);
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  const auto arcs_a = a.Arcs();
  const auto arcs_b = b.Arcs();
  for (size_t i = 0; i < arcs_a.size(); ++i) {
    EXPECT_EQ(arcs_a[i].src, arcs_b[i].src);
    EXPECT_EQ(arcs_a[i].dst, arcs_b[i].dst);
  }
}

}  // namespace
}  // namespace qsc
