// Test-only reference copy of the RothkoRefiner as it existed before the
// flat sparse-row optimization (PR 3): per-node std::unordered_map degree
// rows and unordered_map pair aggregates. The production refiner
// (qsc/coloring/rothko.cc) must reproduce this implementation's split
// sequence bit-for-bit — coloring_rothko_equivalence_test.cc compares full
// history() traces over the 56-graph property corpus. Do not "improve"
// this file; it is the frozen oracle.

#ifndef QSC_TESTS_ROTHKO_REFERENCE_H_
#define QSC_TESTS_ROTHKO_REFERENCE_H_

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "qsc/coloring/partition.h"
#include "qsc/coloring/rothko.h"
#include "qsc/graph/graph.h"
#include "qsc/util/check.h"
#include "qsc/util/timer.h"

namespace qsc {
namespace reference {

constexpr double kZeroTolerance = 1e-12;

inline void SubtractWeight(std::unordered_map<ColorId, double>& map,
                           ColorId key, double w) {
  auto it = map.find(key);
  QSC_DCHECK(it != map.end());
  it->second -= w;
  if (std::abs(it->second) < kZeroTolerance) map.erase(it);
}

inline void AddWeight(std::unordered_map<ColorId, double>& map, ColorId key,
                      double w) {
  double& slot = map[key];
  slot += w;
  if (std::abs(slot) < kZeroTolerance) map.erase(key);
}

class ReferenceRefiner {
 public:
  ReferenceRefiner(const Graph& g, Partition initial, RothkoOptions options)
      : graph_(&g),
        options_(options),
        partition_(std::move(initial)),
        directed_(!g.undirected()) {
    QSC_CHECK_EQ(g.num_nodes(), partition_.num_nodes());
    BuildDegreeMaps();
    out_agg_.resize(partition_.num_colors());
    if (directed_) in_agg_.resize(partition_.num_colors());
    for (ColorId c = 0; c < partition_.num_colors(); ++c) {
      RebuildSourceAggregates(c);
      if (directed_) RebuildTargetInAggregates(c);
    }
  }

  bool Step(ColorId color_cap = 0) {
    HeapEntry raw_top;
    if (!PeekValid(raw_heap_, &raw_top)) return false;
    if (raw_top.priority <= options_.q_tolerance) return false;

    const double pre_step_error = raw_top.priority;
    for (;;) {
      HeapEntry witness;
      QSC_CHECK(PeekValid(weighted_heap_, &witness));
      ApplySplit(witness);
      if (color_cap > 0 && partition_.num_colors() >= color_cap) break;
      if (!PeekValid(raw_heap_, &raw_top)) break;
      if (raw_top.priority <= pre_step_error) break;
    }
    return true;
  }

  void Run() {
    while (partition_.num_colors() < options_.max_colors &&
           Step(options_.max_colors)) {
    }
  }

  const Partition& partition() const { return partition_; }

  double CurrentMaxError() const {
    HeapEntry top;
    if (!PeekValid(raw_heap_, &top)) return 0.0;
    return top.priority;
  }

  const std::vector<RothkoStep>& history() const { return history_; }

 private:
  struct PairAgg {
    double max_w = 0.0;
    double min_w = 0.0;
    int64_t count = 0;
    uint64_t version = 0;
  };

  struct HeapEntry {
    double priority;
    ColorId src;
    ColorId dst;
    uint8_t direction;
    uint64_t version;

    bool operator<(const HeapEntry& o) const {
      if (priority != o.priority) return priority < o.priority;
      if (src != o.src) return src > o.src;
      if (dst != o.dst) return dst > o.dst;
      return direction > o.direction;
    }
  };

  void BuildDegreeMaps() {
    const NodeId n = graph_->num_nodes();
    out_deg_.resize(n);
    if (directed_) in_deg_.resize(n);
    for (NodeId u = 0; u < n; ++u) {
      for (const NeighborEntry& e : graph_->OutNeighbors(u)) {
        AddWeight(out_deg_[u], partition_.ColorOf(e.node), e.weight);
        if (directed_) {
          AddWeight(in_deg_[e.node], partition_.ColorOf(u), e.weight);
        }
      }
    }
  }

  double EffectiveError(const PairAgg& agg, int64_t color_size) const {
    double hi = agg.max_w;
    double lo = agg.min_w;
    if (agg.count < color_size) {
      hi = std::max(hi, 0.0);
      lo = std::min(lo, 0.0);
    }
    return hi - lo;
  }

  double WeightedPriority(double err, ColorId src, ColorId dst) const {
    double c = 1.0;
    if (options_.alpha != 0.0) {
      c *= std::pow(static_cast<double>(partition_.ColorSize(src)),
                    options_.alpha);
    }
    if (options_.beta != 0.0) {
      c *= std::pow(static_cast<double>(partition_.ColorSize(dst)),
                    options_.beta);
    }
    return err * c;
  }

  void PushEntries(ColorId src, ColorId dst, uint8_t direction,
                   const PairAgg& agg) {
    const ColorId stats_color = direction == 0 ? src : dst;
    const double err = EffectiveError(agg, partition_.ColorSize(stats_color));
    if (err <= 0.0) return;
    weighted_heap_.push(
        {WeightedPriority(err, src, dst), src, dst, direction, agg.version});
    raw_heap_.push({err, src, dst, direction, agg.version});
  }

  void RebuildSourceAggregates(ColorId c) {
    auto& aggs = out_agg_[c];
    aggs.clear();
    for (NodeId v : partition_.Members(c)) {
      for (const auto& [target, w] : out_deg_[v]) {
        MergeInto(aggs, target, w);
      }
    }
    FinalizeAndPush(aggs, c, /*source_side=*/true, /*direction=*/0);
  }

  void RebuildTargetInAggregates(ColorId c) {
    auto& aggs = in_agg_[c];
    aggs.clear();
    for (NodeId v : partition_.Members(c)) {
      for (const auto& [source, w] : in_deg_[v]) {
        MergeInto(aggs, source, w);
      }
    }
    FinalizeAndPush(aggs, c, /*source_side=*/false, /*direction=*/1);
  }

  static void MergeInto(std::unordered_map<ColorId, PairAgg>& aggs,
                        ColorId key, double w) {
    auto [it, inserted] = aggs.try_emplace(key);
    PairAgg& agg = it->second;
    if (inserted) {
      agg.max_w = agg.min_w = w;
      agg.count = 1;
    } else {
      agg.max_w = std::max(agg.max_w, w);
      agg.min_w = std::min(agg.min_w, w);
      ++agg.count;
    }
  }

  void FinalizeAndPush(std::unordered_map<ColorId, PairAgg>& aggs,
                       ColorId fixed_color, bool source_side,
                       uint8_t direction) {
    for (auto& [other, agg] : aggs) {
      agg.version = ++version_counter_;
      const ColorId src = source_side ? fixed_color : other;
      const ColorId dst = source_side ? other : fixed_color;
      PushEntries(src, dst, direction, agg);
    }
  }

  void RecomputeOutEntry(ColorId c, ColorId t) {
    PairAgg agg;
    for (NodeId v : partition_.Members(c)) {
      const auto it = out_deg_[v].find(t);
      if (it == out_deg_[v].end()) continue;
      if (agg.count == 0) {
        agg.max_w = agg.min_w = it->second;
        agg.count = 1;
      } else {
        agg.max_w = std::max(agg.max_w, it->second);
        agg.min_w = std::min(agg.min_w, it->second);
        ++agg.count;
      }
    }
    if (agg.count == 0) {
      out_agg_[c].erase(t);
      return;
    }
    agg.version = ++version_counter_;
    out_agg_[c][t] = agg;
    PushEntries(c, t, /*direction=*/0, agg);
  }

  void RecomputeInEntry(ColorId s, ColorId c) {
    PairAgg agg;
    for (NodeId v : partition_.Members(c)) {
      const auto it = in_deg_[v].find(s);
      if (it == in_deg_[v].end()) continue;
      if (agg.count == 0) {
        agg.max_w = agg.min_w = it->second;
        agg.count = 1;
      } else {
        agg.max_w = std::max(agg.max_w, it->second);
        agg.min_w = std::min(agg.min_w, it->second);
        ++agg.count;
      }
    }
    if (agg.count == 0) {
      in_agg_[c].erase(s);
      return;
    }
    agg.version = ++version_counter_;
    in_agg_[c][s] = agg;
    PushEntries(s, c, /*direction=*/1, agg);
  }

  bool PeekValid(std::priority_queue<HeapEntry>& heap, HeapEntry* out) const {
    while (!heap.empty()) {
      const HeapEntry& top = heap.top();
      const auto& agg_map =
          top.direction == 0 ? out_agg_[top.src] : in_agg_[top.dst];
      const ColorId key = top.direction == 0 ? top.dst : top.src;
      const auto it = agg_map.find(key);
      if (it != agg_map.end() && it->second.version == top.version) {
        *out = top;
        return true;
      }
      heap.pop();
    }
    return false;
  }

  void ApplySplit(const HeapEntry& witness) {
    const ColorId split_color =
        witness.direction == 0 ? witness.src : witness.dst;
    const ColorId other = witness.direction == 0 ? witness.dst : witness.src;
    const auto& deg_maps = witness.direction == 0 ? out_deg_ : in_deg_;

    const std::vector<NodeId>& members = partition_.Members(split_color);
    const size_t size = members.size();
    QSC_CHECK_GE(size, 2u);

    std::vector<double> values(size);
    bool has_negative = false;
    double lo = 0.0, hi = 0.0, sum = 0.0;
    for (size_t i = 0; i < size; ++i) {
      const auto& m = deg_maps[members[i]];
      const auto it = m.find(other);
      const double val = it == m.end() ? 0.0 : it->second;
      values[i] = val;
      has_negative |= val < 0.0;
      sum += val;
      if (i == 0) {
        lo = hi = val;
      } else {
        lo = std::min(lo, val);
        hi = std::max(hi, val);
      }
    }
    QSC_CHECK_GT(hi, lo);

    double threshold;
    if (options_.split_mean == RothkoOptions::SplitMean::kGeometric &&
        !has_negative) {
      double log_sum = 0.0;
      for (double v : values) log_sum += std::log1p(v);
      threshold = std::expm1(log_sum / static_cast<double>(size));
    } else {
      threshold = sum / static_cast<double>(size);
    }

    std::vector<NodeId> eject;
    for (size_t i = 0; i < size; ++i) {
      if (values[i] > threshold) eject.push_back(members[i]);
    }
    if (eject.empty() || eject.size() == size) {
      eject.clear();
      for (size_t i = 0; i < size; ++i) {
        if (values[i] > lo) eject.push_back(members[i]);
      }
      QSC_CHECK(!eject.empty());
      QSC_CHECK_LT(eject.size(), size);
    }

    const ColorId new_color = partition_.SplitColor(split_color, eject);
    out_agg_.emplace_back();
    if (directed_) in_agg_.emplace_back();

    std::unordered_set<ColorId> out_affected;
    std::unordered_set<ColorId> in_affected;
    for (NodeId v : eject) {
      for (const NeighborEntry& e : graph_->InNeighbors(v)) {
        SubtractWeight(out_deg_[e.node], split_color, e.weight);
        AddWeight(out_deg_[e.node], new_color, e.weight);
        out_affected.insert(partition_.ColorOf(e.node));
      }
      if (directed_) {
        for (const NeighborEntry& e : graph_->OutNeighbors(v)) {
          SubtractWeight(in_deg_[e.node], split_color, e.weight);
          AddWeight(in_deg_[e.node], new_color, e.weight);
          in_affected.insert(partition_.ColorOf(e.node));
        }
      }
    }

    RebuildSourceAggregates(split_color);
    RebuildSourceAggregates(new_color);
    if (directed_) {
      RebuildTargetInAggregates(split_color);
      RebuildTargetInAggregates(new_color);
    }
    for (ColorId c : out_affected) {
      if (c == split_color || c == new_color) continue;
      RecomputeOutEntry(c, split_color);
      RecomputeOutEntry(c, new_color);
    }
    if (directed_) {
      for (ColorId c : in_affected) {
        if (c == split_color || c == new_color) continue;
        RecomputeInEntry(split_color, c);
        RecomputeInEntry(new_color, c);
      }
    }

    history_.push_back({split_color, new_color, hi - lo,
                        partition_.num_colors(), timer_.ElapsedSeconds()});
  }

  const Graph* graph_;
  RothkoOptions options_;
  Partition partition_;
  bool directed_;

  std::vector<std::unordered_map<ColorId, double>> out_deg_;
  std::vector<std::unordered_map<ColorId, double>> in_deg_;

  std::vector<std::unordered_map<ColorId, PairAgg>> out_agg_;
  std::vector<std::unordered_map<ColorId, PairAgg>> in_agg_;

  mutable std::priority_queue<HeapEntry> weighted_heap_;
  mutable std::priority_queue<HeapEntry> raw_heap_;
  uint64_t version_counter_ = 0;

  WallTimer timer_;
  std::vector<RothkoStep> history_;
};

}  // namespace reference
}  // namespace qsc

#endif  // QSC_TESTS_ROTHKO_REFERENCE_H_
