// Compressor::FromFile (qsc/api/compressor.h): the zero-copy mmap
// serving path. All five query kinds must answer bit-identically to a
// session built from the materialized graph, graph() must lazily
// materialize without disturbing serving, and ApplyEdits must perform
// the one-time copy-on-write materialization and keep the session
// serving the mutated graph.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "qsc/api/compressor.h"
#include "qsc/dynamic/edit_stream.h"
#include "qsc/graph/generators.h"
#include "qsc/graph/io.h"
#include "qsc/lp/generators.h"
#include "qsc/util/random.h"

namespace qsc {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

Graph DirectedBa(NodeId n, uint64_t seed) {
  Rng rng(seed);
  const Graph ba = BarabasiAlbert(n, 3, rng);
  return Graph::FromArcs(ba.num_nodes(), ba.Arcs(), /*undirected=*/false);
}

// Writes `g`, opens a FromFile session on it, and hands both to `fn`.
template <typename Fn>
void WithMappedSession(const Graph& g, const std::string& name, Fn fn) {
  const std::string path = TempPath(name);
  ASSERT_TRUE(WriteBinary(g, path).ok());
  StatusOr<Compressor> session = Compressor::FromFile(path);
  ASSERT_TRUE(session.ok()) << session.status().message();
  fn(*session);
  std::remove(path.c_str());
}

TEST(ServingMmapTest, FromFileMissingFileFails) {
  const StatusOr<Compressor> session =
      Compressor::FromFile(TempPath("absent.qscbin"));
  EXPECT_FALSE(session.ok());
}

TEST(ServingMmapTest, FromFileHasGraphWithoutMaterializing) {
  const Graph g = DirectedBa(120, 5);
  WithMappedSession(g, "mmap_has_graph.qscbin", [&](Compressor& session) {
    EXPECT_TRUE(session.has_graph());
    EXPECT_EQ(session.graph_version(), 0);
  });
}

TEST(ServingMmapTest, AllFiveQueryKindsMatchMaterializedSession) {
  const Graph g = DirectedBa(300, 9);
  Compressor reference(
      std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(), &g));
  WithMappedSession(g, "mmap_identity.qscbin", [&](Compressor& session) {
    QueryOptions options;
    options.max_colors = 24;

    const auto want_coloring = reference.Coloring(options);
    const auto got_coloring = session.Coloring(options);
    ASSERT_TRUE(want_coloring.ok());
    ASSERT_TRUE(got_coloring.ok());
    EXPECT_EQ(*got_coloring->coloring, *want_coloring->coloring);
    EXPECT_EQ(got_coloring->max_q, want_coloring->max_q);

    const auto want_flow = reference.MaxFlow(0, 42, options);
    const auto got_flow = session.MaxFlow(0, 42, options);
    ASSERT_TRUE(want_flow.ok());
    ASSERT_TRUE(got_flow.ok());
    EXPECT_EQ(got_flow->upper_bound, want_flow->upper_bound);
    EXPECT_EQ(got_flow->num_colors, want_flow->num_colors);

    const std::vector<std::pair<NodeId, NodeId>> pairs = {{1, 7}, {3, 19}};
    const auto want_batch = reference.MaxFlowBatch(pairs, options);
    const auto got_batch = session.MaxFlowBatch(pairs, options);
    ASSERT_TRUE(want_batch.ok());
    ASSERT_TRUE(got_batch.ok());
    ASSERT_EQ(got_batch->size(), want_batch->size());
    for (size_t i = 0; i < got_batch->size(); ++i) {
      EXPECT_EQ((*got_batch)[i].upper_bound, (*want_batch)[i].upper_bound);
    }

    QueryOptions lp_options;
    lp_options.max_colors = 8;
    const auto want_lp = reference.SolveLp(Figure3Lp(), lp_options);
    const auto got_lp = session.SolveLp(Figure3Lp(), lp_options);
    ASSERT_TRUE(want_lp.ok());
    ASSERT_TRUE(got_lp.ok());
    EXPECT_EQ(got_lp->lifted_x, want_lp->lifted_x);

    const auto want_central = reference.Centrality(options);
    const auto got_central = session.Centrality(options);
    ASSERT_TRUE(want_central.ok());
    ASSERT_TRUE(got_central.ok());
    EXPECT_EQ(got_central->scores, want_central->scores);
  });
}

TEST(ServingMmapTest, GraphLazilyMaterializesAndMatchesReadBinary) {
  const Graph g = DirectedBa(150, 13);
  WithMappedSession(g, "mmap_lazy_graph.qscbin", [&](Compressor& session) {
    // graph() materializes an owning copy equal to the serialized graph;
    // queries before and after agree (serving stays on the view).
    QueryOptions options;
    options.max_colors = 16;
    const auto before = session.Coloring(options);
    ASSERT_TRUE(before.ok());
    EXPECT_TRUE(session.graph() == g);
    const auto after = session.Coloring(options);
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(*after->coloring, *before->coloring);
  });
}

TEST(ServingMmapTest, ApplyEditsCopyOnWriteMatchesInMemorySession) {
  const Graph g = DirectedBa(200, 17);
  const StatusOr<std::vector<dynamic::EditOp>> edits =
      dynamic::GenerateEdits(g, dynamic::EditKind::kInsertEdge, 6, 17);
  ASSERT_TRUE(edits.ok());
  Compressor reference(
      std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(), &g));
  WithMappedSession(g, "mmap_cow_edits.qscbin", [&](Compressor& session) {
    QueryOptions options;
    options.max_colors = 24;
    // Warm the caches pre-edit so the repair path runs on both sides.
    ASSERT_TRUE(session.Coloring(options).ok());
    ASSERT_TRUE(reference.Coloring(options).ok());

    const auto got_edit = session.ApplyEdits(*edits);
    const auto want_edit = reference.ApplyEdits(*edits);
    ASSERT_TRUE(got_edit.ok()) << got_edit.status().message();
    ASSERT_TRUE(want_edit.ok());
    EXPECT_EQ(got_edit->edits_applied, want_edit->edits_applied);
    EXPECT_EQ(session.graph_version(), 1);

    const auto got = session.Coloring(options);
    const auto want = reference.Coloring(options);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    EXPECT_EQ(*got->coloring, *want->coloring);
    EXPECT_EQ(got->max_q, want->max_q);
    // The copy-on-write materialization happened; graph() now returns the
    // mutated owning graph.
    EXPECT_EQ(session.graph().num_edges(), g.num_edges() + 6);
  });
}

TEST(ServingMmapTest, FileCanBeRemovedWhileSessionServes) {
  // mmap keeps the pages alive after the directory entry is gone — a
  // service can open a snapshot and let the producer rotate the file.
  const Graph g = DirectedBa(100, 21);
  const std::string path = TempPath("mmap_unlinked.qscbin");
  ASSERT_TRUE(WriteBinary(g, path).ok());
  StatusOr<Compressor> session = Compressor::FromFile(path);
  ASSERT_TRUE(session.ok());
  std::remove(path.c_str());
  QueryOptions options;
  options.max_colors = 8;
  const auto result = session->Coloring(options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->coloring->num_colors(), 0);
}

}  // namespace
}  // namespace qsc
