// Differential tests for the three exact max-flow solvers: Dinic,
// Edmonds-Karp and push-relabel must agree to 1e-9 on seeded random
// networks, including the representational edge cases an adversarial
// instance can hit — zero-capacity arcs in the residual network, arcs
// whose graph weights coalesce to zero, and source/sink pairs with no
// connecting path.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "qsc/eval/differential.h"
#include "qsc/eval/workload.h"
#include "qsc/flow/dinic.h"
#include "qsc/flow/edmonds_karp.h"
#include "qsc/flow/min_cut.h"
#include "qsc/flow/network.h"
#include "qsc/flow/push_relabel.h"
#include "qsc/graph/generators.h"
#include "qsc/graph/graph.h"
#include "qsc/util/random.h"

namespace qsc {
namespace {

// Runs all three solvers on fresh copies of `net` and checks pairwise
// agreement; returns the push-relabel value.
double ExpectSolversAgree(const ResidualNetwork& net, NodeId source,
                          NodeId sink) {
  ResidualNetwork for_dinic = net;
  ResidualNetwork for_ek = net;
  ResidualNetwork for_pr = net;
  const double dinic = MaxFlowDinic(for_dinic, source, sink);
  const double ek = MaxFlowEdmondsKarp(for_ek, source, sink);
  const double pr = MaxFlowPushRelabel(for_pr, source, sink);
  const double tol = 1e-9 * std::max(1.0, std::abs(pr));
  EXPECT_NEAR(dinic, ek, tol);
  EXPECT_NEAR(dinic, pr, tol);
  return pr;
}

class FlowDifferentialTest : public testing::TestWithParam<uint64_t> {};

TEST_P(FlowDifferentialTest, SolversAgreeOnRandomNetworks) {
  Rng rng(GetParam());
  const FlowInstance inst = GridFlowNetwork(12, 7, 9, 25, rng);
  const double flow =
      ExpectSolversAgree(ResidualNetwork::FromGraph(inst.graph), inst.source,
                         inst.sink);
  EXPECT_GT(flow, 0.0);
  // Strong duality certifies all three.
  EXPECT_NEAR(MinCut(inst.graph, inst.source, inst.sink).value, flow,
              1e-9 * std::max(1.0, flow));
}

TEST_P(FlowDifferentialTest, SolversAgreeWithZeroCapacityArcs) {
  // A random network where ~1/3 of the arcs have capacity exactly zero:
  // present in the residual representation but unusable. The solvers must
  // neither route flow through them nor disagree on the value.
  Rng rng(GetParam() + 1000);
  const NodeId n = 24;
  ResidualNetwork net(n);
  for (int i = 0; i < 140; ++i) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u == v) continue;
    const double cap =
        rng.Bernoulli(1.0 / 3) ? 0.0 : static_cast<double>(rng.UniformInt(1, 9));
    net.AddArc(u, v, cap);
  }
  ExpectSolversAgree(net, 0, n - 1);
}

TEST_P(FlowDifferentialTest, ZeroCoalescedArcsMatchTheirAbsence) {
  // Graph-level zero arcs: duplicate edges canceling to weight zero are
  // dropped by Graph::FromEdges, so the flow must equal the instance
  // without them.
  Rng rng(GetParam() + 2000);
  std::vector<EdgeTriple> edges;
  const NodeId n = 16;
  for (int i = 0; i < 60; ++i) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u == v) continue;
    edges.push_back({u, v, static_cast<double>(rng.UniformInt(1, 6))});
  }
  std::vector<EdgeTriple> with_cancelled = edges;
  for (int i = 0; i < 20; ++i) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u == v) v = (v + 1) % n;
    with_cancelled.push_back({u, v, 2.5});
    with_cancelled.push_back({u, v, -2.5});
  }
  const Graph plain = Graph::FromEdges(n, edges, /*undirected=*/false);
  const Graph cancelled =
      Graph::FromEdges(n, with_cancelled, /*undirected=*/false);
  EXPECT_TRUE(plain == cancelled);
  const double a = ExpectSolversAgree(ResidualNetwork::FromGraph(plain), 0,
                                      n - 1);
  const double b = ExpectSolversAgree(ResidualNetwork::FromGraph(cancelled),
                                      0, n - 1);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST_P(FlowDifferentialTest, DisconnectedSourceSinkGivesZeroFlow) {
  // Two random components with no arcs between them: every solver must
  // report exactly zero for a cross-component source/sink pair.
  Rng rng(GetParam() + 3000);
  const NodeId half = 10;
  std::vector<EdgeTriple> edges;
  for (int i = 0; i < 40; ++i) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(half));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(half));
    if (u != v) edges.push_back({u, v, static_cast<double>(rng.UniformInt(1, 5))});
    const NodeId x = static_cast<NodeId>(half + rng.NextBounded(half));
    const NodeId y = static_cast<NodeId>(half + rng.NextBounded(half));
    if (x != y) edges.push_back({x, y, static_cast<double>(rng.UniformInt(1, 5))});
  }
  const Graph g = Graph::FromEdges(2 * half, edges, /*undirected=*/false);
  const double flow =
      ExpectSolversAgree(ResidualNetwork::FromGraph(g), 0, 2 * half - 1);
  EXPECT_DOUBLE_EQ(flow, 0.0);
}

TEST_P(FlowDifferentialTest, EvalRunnerFindsNoViolations) {
  // The packaged invariant suite over the same seeds (solver agreement,
  // duality, Theorem-6 bound directions, anytime monotonicity).
  eval::EvalOptions options;
  options.seed = GetParam();
  options.compute_flow_lower_bound = true;
  Rng rng(GetParam());
  const FlowInstance inst = SegmentationGridNetwork(20, 12, 2, rng);
  const eval::DifferentialReport report =
      eval::DifferentialRunner(options).CheckMaxFlow(inst, {6, 12, 24});
  EXPECT_TRUE(report.ok()) << report.Summary();
}

INSTANTIATE_TEST_SUITE_P(Sweep, FlowDifferentialTest,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(FlowDifferentialTest, SinkUnreachableByOrientation) {
  // A path oriented away from the sink: connectivity exists in the
  // undirected sense but no directed s->t path does.
  const Graph g = Graph::FromEdges(
      4, {{3, 2, 5.0}, {2, 1, 5.0}, {1, 0, 5.0}}, false);
  EXPECT_DOUBLE_EQ(ExpectSolversAgree(ResidualNetwork::FromGraph(g), 0, 3),
                   0.0);
}

TEST(FlowDifferentialTest, OnlyZeroCapacityPathToSink) {
  // s -> m -> t exists but the second hop has capacity zero.
  ResidualNetwork net(3);
  net.AddArc(0, 1, 7.0);
  net.AddArc(1, 2, 0.0);
  EXPECT_DOUBLE_EQ(ExpectSolversAgree(net, 0, 2), 0.0);
}

}  // namespace
}  // namespace qsc
