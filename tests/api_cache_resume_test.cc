// The coloring cache's anytime-resume contract, proven over the shared
// 56-graph Rothko property corpus (tests/rothko_corpus.h): continuing a
// cached refiner to a larger color budget yields a partition bit-identical
// to a fresh Rothko run at that budget, with and without pinned terminals.
// This is what lets qsc::Compressor serve a 256-color query by *resuming*
// a cached 64-color refinement instead of recomputing.

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "qsc/api/coloring_cache.h"
#include "qsc/api/compressor.h"
#include "qsc/coloring/rothko.h"
#include "qsc/flow/approx_flow.h"
#include "qsc/graph/generators.h"
#include "qsc/util/random.h"
#include "rothko_corpus.h"

namespace qsc {
namespace {

using testing_corpus::CorpusGraph;
using testing_corpus::CorpusSeeds;

const std::vector<RothkoOptions::SplitMean> kSplitMeans = {
    RothkoOptions::SplitMean::kArithmetic,
    RothkoOptions::SplitMean::kGeometric};

std::string CellName(uint64_t seed, bool directed,
                     RothkoOptions::SplitMean split_mean) {
  return "seed=" + std::to_string(seed) +
         (directed ? " directed" : " undirected") +
         (split_mean == RothkoOptions::SplitMean::kGeometric ? " geometric"
                                                             : " arithmetic");
}

// Every corpus cell: sweep ascending budgets through one session and
// check each against a fresh run at that budget.
TEST(CacheResumeTest, AscendingBudgetsMatchFreshRunsOverCorpus) {
  const std::vector<ColorId> budgets = {6, 12, 24, 48};
  for (const uint64_t seed : CorpusSeeds()) {
    for (const bool directed : {false, true}) {
      for (const RothkoOptions::SplitMean split_mean : kSplitMeans) {
        const Graph g = CorpusGraph(seed, directed);
        Compressor session(Graph{g});
        for (const ColorId budget : budgets) {
          QueryOptions query;
          query.max_colors = budget;
          query.split_mean = split_mean;
          const auto resumed = session.Coloring(query);
          ASSERT_TRUE(resumed.ok());

          RothkoOptions fresh_options;
          fresh_options.max_colors = budget;
          fresh_options.split_mean = split_mean;
          const Partition fresh = RothkoColoring(g, fresh_options);
          ASSERT_EQ(resumed->coloring->color_of(), fresh.color_of())
              << CellName(seed, directed, split_mean) << " budget " << budget;
        }
      }
    }
  }
}

// The issue's literal scenario on a graph big enough for both budgets: a
// 64-color refinement continued to 256 colors is bit-identical to a fresh
// 256-color run.
TEST(CacheResumeTest, Resume64To256MatchesFresh256) {
  Rng rng(1234);
  const Graph g = BarabasiAlbert(2000, 3, rng);
  Compressor session(Graph{g});

  QueryOptions query;
  query.max_colors = 64;
  ASSERT_TRUE(session.Coloring(query).ok());

  query.max_colors = 256;
  const auto resumed = session.Coloring(query);
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(resumed->telemetry.coloring_cache_hit);
  EXPECT_EQ(resumed->coloring->num_colors(), 256);

  RothkoOptions fresh_options;
  fresh_options.max_colors = 256;
  const Partition fresh = RothkoColoring(g, fresh_options);
  EXPECT_EQ(resumed->coloring->color_of(), fresh.color_of());
}

// Saturation: on 60-node corpus graphs a 64-color budget converges early;
// resuming to 256 must be a no-op that still matches the fresh 256 run.
TEST(CacheResumeTest, SaturatedResumeMatchesFreshOverCorpus) {
  for (const uint64_t seed : CorpusSeeds()) {
    const Graph g = CorpusGraph(seed, /*directed=*/true);
    Compressor session(Graph{g});
    QueryOptions query;
    query.max_colors = 64;
    ASSERT_TRUE(session.Coloring(query).ok());
    query.max_colors = 256;
    const auto resumed = session.Coloring(query);
    ASSERT_TRUE(resumed.ok());

    RothkoOptions fresh_options;
    fresh_options.max_colors = 256;
    const Partition fresh = RothkoColoring(g, fresh_options);
    ASSERT_EQ(resumed->coloring->color_of(), fresh.color_of())
        << "seed " << seed;
  }
}

// Pinned-terminal specs (the max-flow path) resume identically too: the
// session's ladder of MaxFlow budgets reproduces cold ApproximateMaxFlow
// colorings and bounds at every budget, over the directed corpus.
TEST(CacheResumeTest, PinnedFlowResumeMatchesColdOverCorpus) {
  const std::vector<ColorId> budgets = {8, 16, 32};
  for (const uint64_t seed : CorpusSeeds()) {
    const Graph g = CorpusGraph(seed, /*directed=*/true);
    const NodeId source = 0;
    const NodeId sink = g.num_nodes() - 1;
    Compressor session(Graph{g});
    for (const ColorId budget : budgets) {
      QueryOptions query;
      query.max_colors = budget;
      const auto resumed = session.MaxFlow(source, sink, query);
      ASSERT_TRUE(resumed.ok());

      FlowApproxOptions cold;
      cold.rothko.max_colors = budget;
      const FlowApproxResult fresh = ApproximateMaxFlow(g, source, sink, cold);
      ASSERT_EQ(resumed->upper_bound, fresh.upper_bound)
          << "seed " << seed << " budget " << budget;
      ASSERT_EQ(resumed->coloring->color_of(), fresh.coloring.color_of())
          << "seed " << seed << " budget " << budget;
    }
  }
}

// The cache layer directly: InitialPartition reproduces the terminal
// pinning of ApproximateMaxFlow, and a shared handle is returned without
// refinement when the budget is already met.
TEST(ColoringCacheTest, InitialPartitionPinsInOrder) {
  ColoringSpec spec;
  spec.pinned = {5, 2};
  const Partition p = InitialPartition(spec, 8);
  EXPECT_EQ(p.num_colors(), 3);
  EXPECT_EQ(p.ColorSize(p.ColorOf(5)), 1);
  EXPECT_EQ(p.ColorSize(p.ColorOf(2)), 1);
  EXPECT_NE(p.ColorOf(5), p.ColorOf(2));
  EXPECT_EQ(p.ColorOf(0), p.ColorOf(7));

  // No pins: the trivial partition.
  const Partition trivial = InitialPartition(ColoringSpec{}, 4);
  EXPECT_EQ(trivial.num_colors(), 1);
}

TEST(ColoringCacheTest, RefineSharesSnapshotsAcrossEqualBudgets) {
  Rng rng(3);
  auto g = std::make_shared<const Graph>(ErdosRenyiGnm(80, 240, rng));
  ColoringCache cache(g);
  ColoringSpec spec;
  const auto a = cache.Refine(spec, 12);
  const auto b = cache.Refine(spec, 12);
  EXPECT_FALSE(a.cache_hit);
  EXPECT_TRUE(b.cache_hit);
  EXPECT_EQ(a.partition.get(), b.partition.get());
  EXPECT_EQ(b.splits, 0);
  EXPECT_EQ(cache.num_entries(), 1);
  EXPECT_EQ(cache.stats().lookups, 2);
}

}  // namespace
}  // namespace qsc
