#include "qsc/coloring/wl2.h"

#include <gtest/gtest.h>

#include <cmath>

#include "qsc/centrality/brandes.h"
#include "qsc/coloring/stable.h"
#include "qsc/graph/datasets.h"
#include "qsc/graph/generators.h"
#include "qsc/util/random.h"

namespace qsc {
namespace {

TEST(Wl2Test, CycleIsOneColor) {
  // Vertex-transitive: all diagonal colors equal.
  EXPECT_EQ(Wl2NodeColoring(CycleGraph(7)).num_colors(), 1);
}

TEST(Wl2Test, PathMatchesSymmetry) {
  // P5: {0,4}, {1,3}, {2} — 2-WL cannot beat the actual automorphisms.
  const Partition p = Wl2NodeColoring(PathGraph(5));
  EXPECT_EQ(p.num_colors(), 3);
  EXPECT_EQ(p.ColorOf(0), p.ColorOf(4));
  EXPECT_EQ(p.ColorOf(1), p.ColorOf(3));
}

TEST(Wl2Test, RefinesStableColoring) {
  Rng rng(3);
  for (int trial = 0; trial < 4; ++trial) {
    const Graph g = ErdosRenyiGnm(25, 60, rng);
    const Partition wl2 = Wl2NodeColoring(g);
    const Partition wl1 = StableColoring(g);
    EXPECT_TRUE(wl2.IsRefinementOf(wl1)) << trial;
  }
}

TEST(Wl2Test, SeparatesFigure5Nodes) {
  // 1-WL merges the 6-cycle node u and triangle node v (one stable
  // color); 2-WL tells them apart — consistent with Theorem 11, since
  // their centralities differ.
  const auto ce = Figure5Graph();
  const Partition wl1 = StableColoring(ce.graph);
  EXPECT_EQ(wl1.ColorOf(ce.u), wl1.ColorOf(ce.v));
  const Partition wl2 = Wl2NodeColoring(ce.graph);
  EXPECT_NE(wl2.ColorOf(ce.u), wl2.ColorOf(ce.v));
}

// Theorem 11: nodes with the same 2-WL color have the same betweenness
// centrality.
class Wl2CentralityTest : public testing::TestWithParam<int> {};

TEST_P(Wl2CentralityTest, SameColorImpliesSameCentrality) {
  Rng rng(GetParam());
  const Graph g = ErdosRenyiGnm(22, 50 + 5 * GetParam(), rng);
  const Partition wl2 = Wl2NodeColoring(g);
  const auto centrality = BetweennessExact(g);
  for (ColorId c = 0; c < wl2.num_colors(); ++c) {
    const auto& members = wl2.Members(c);
    for (size_t i = 1; i < members.size(); ++i) {
      EXPECT_NEAR(centrality[members[i]], centrality[members[0]], 1e-8)
          << "color " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Wl2CentralityTest,
                         testing::Values(1, 2, 3, 4, 5, 6));

TEST(Wl2Test, KarateRefinesToDiscreteLikeStable) {
  // On the karate club, 2-WL is at least as fine as the 27-color stable
  // coloring.
  const Graph g = KarateClub();
  const Partition wl2 = Wl2NodeColoring(g);
  EXPECT_GE(wl2.num_colors(), 27);
  EXPECT_TRUE(wl2.IsRefinementOf(StableColoring(g)));
}

TEST(Wl2Test, WeightsDistinguishPairs) {
  // Two otherwise-identical components with different edge weights.
  const Graph g = Graph::FromEdges(
      4, {{0, 1, 1.0}, {2, 3, 2.0}}, true);
  const Partition wl2 = Wl2NodeColoring(g);
  EXPECT_NE(wl2.ColorOf(0), wl2.ColorOf(2));
}

}  // namespace
}  // namespace qsc
